package workload

import (
	"encoding/binary"
	"math/rand"

	"repro/internal/api"
)

// Phoenix suite: map-reduce style kernels. Mostly embarrassingly parallel
// scans with a final reduction; kmeans adds per-iteration fork-join and
// word_count / reverse_index add hash-bucket locking.

// Layout conventions: page 0 is the result page every program writes its
// final values to (so checksums observe program output), input and
// per-thread regions follow at page-aligned offsets.

const pg = 4096

// histogram: scan a byte array counting 256 bins per thread locally, then
// merge into the global bins under one mutex. Embarrassingly parallel.
func histogram() Spec {
	return Spec{
		Name:  "histogram",
		Suite: "phoenix",
		Class: ClassEP,
		SegmentSize: func(p Params) int {
			return 16*pg + (p.Threads+1)*pg
		},
		Prog: func(p Params) func(api.T) {
			n := 256 * 1024 * p.scale()
			binsOff := pg // global bins: 256 * 8 bytes
			return func(t api.T) {
				m := t.NewMutex()
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						lo, hi := chunkRange(n, p.Threads, id)
						var bins [256]uint64
						buf := make([]byte, pg)
						for off := lo; off < hi; off += pg {
							c := hi - off
							if c > pg {
								c = pg
							}
							inputBlock(t, p.Seed, off, buf[:c])
							for _, b := range buf[:c] {
								bins[b]++
							}
							t.Compute(int64(20 * c))
						}
						// Merge into the global bins.
						t.Lock(m)
						for i, v := range bins {
							if v != 0 {
								api.AddU64(t, binsOff+8*i, v)
							}
						}
						t.Unlock(m)
					}
				})
				// Result: total count (must equal n).
				var total uint64
				for i := 0; i < 256; i++ {
					total += api.U64(t, binsOff+8*i)
				}
				api.PutU64(t, 0, total)
			}
		},
	}
}

// linearRegression: tiny EP kernel summing five statistics over (x,y)
// pairs; the paper notes its total runtime is so short (<500ms) that fixed
// overheads dominate.
func linearRegression() Spec {
	return Spec{
		Name:  "linear_regression",
		Suite: "phoenix",
		Class: ClassEP,
		SegmentSize: func(p Params) int {
			return 16 * pg
		},
		Prog: func(p Params) func(api.T) {
			n := 32 * 1024 * p.scale() // bytes; pairs of bytes are (x,y)
			return func(t api.T) {
				m := t.NewMutex()
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						lo, hi := chunkRange(n/2, p.Threads, id)
						var sx, sy, sxx, syy, sxy uint64
						buf := make([]byte, pg)
						for off := lo * 2; off < hi*2; off += pg {
							c := hi*2 - off
							if c > pg {
								c = pg
							}
							inputBlock(t, p.Seed, off, buf[:c])
							for i := 0; i+1 < c; i += 2 {
								x, y := uint64(buf[i]), uint64(buf[i+1])
								sx += x
								sy += y
								sxx += x * x
								syy += y * y
								sxy += x * y
							}
							t.Compute(int64(6 * c))
						}
						t.Lock(m)
						api.AddU64(t, 8, sx)
						api.AddU64(t, 16, sy)
						api.AddU64(t, 24, sxx)
						api.AddU64(t, 32, syy)
						api.AddU64(t, 40, sxy)
						t.Unlock(m)
					}
				})
				api.PutU64(t, 0, api.U64(t, 8)^api.U64(t, 40))
			}
		},
	}
}

// stringMatch: EP scan for key occurrences; per-thread counters land on
// private pages, no locks at all.
func stringMatch() Spec {
	return Spec{
		Name:  "string_match",
		Suite: "phoenix",
		Class: ClassEP,
		SegmentSize: func(p Params) int {
			return 16*pg + (p.Threads+1)*pg
		},
		Prog: func(p Params) func(api.T) {
			n := 192 * 1024 * p.scale()
			slotOff := func(id int) int { return 16*pg + (id+1)*pg - pg }
			keys := [][]byte{[]byte("key0"), []byte("abcd"), []byte("zz91")}
			return func(t api.T) {
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						lo, hi := chunkRange(n, p.Threads, id)
						count := uint64(0)
						buf := make([]byte, pg)
						for off := lo; off < hi; off += pg {
							c := hi - off
							if c > pg {
								c = pg
							}
							inputBlock(t, p.Seed, off, buf[:c])
							for _, k := range keys {
								for i := 0; i+len(k) <= c; i += 7 {
									match := true
									for j := range k {
										if buf[i+j] != k[j] {
											match = false
											break
										}
									}
									if match {
										count++
									}
								}
							}
							t.Compute(int64(25 * c))
						}
						api.PutU64(t, slotOff(id), count)
					}
				})
				var total uint64
				for id := 0; id < p.Threads; id++ {
					total += api.U64(t, slotOff(id))
				}
				api.PutU64(t, 0, total)
			}
		},
	}
}

// matrixMultiply: EP row-band matrix product; each worker writes a
// disjoint, page-aligned band of C.
func matrixMultiply() Spec {
	dim := func(p Params) int { return 48 * p.scale() }
	return Spec{
		Name:  "matrix_multiply",
		Suite: "phoenix",
		Class: ClassEP,
		SegmentSize: func(p Params) int {
			n := dim(p)
			return 16*pg + n*n*8 + 3*pg
		},
		Prog: func(p Params) func(api.T) {
			n := dim(p)
			cOff := 16 * pg
			return func(t api.T) {
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						lo, hi := chunkRange(n, p.Threads, id)
						rowA := make([]byte, n*8)
						rowB := make([]byte, n*8)
						out := make([]byte, n*8)
						for r := lo; r < hi; r++ {
							// A and B are read-only inputs (mmap'd files in
							// Phoenix); one representative row read each.
							inputBlock(t, p.Seed, r*n*8, rowA)
							inputBlock(t, p.Seed+1, (r%n)*n*8, rowB)
							var acc uint64
							for i := 0; i < n*8; i += 8 {
								acc += binary.LittleEndian.Uint64(rowA[i:]) ^
									binary.LittleEndian.Uint64(rowB[i:])
								binary.LittleEndian.PutUint64(out[i:], acc)
							}
							t.Compute(int64(20 * n * n)) // n cells × n FLOPs each
							t.Write(out, cOff+r*n*8)
						}
					}
				})
				api.PutU64(t, 0, api.U64(t, cOff)^api.U64(t, cOff+(n*n-1)*8))
			}
		},
	}
}

// pca: two phases (means, then covariance samples) separated by a barrier,
// with a mutex-protected global accumulator. Workers write their rows'
// means into one shared page — real page-level write sharing.
func pca() Spec {
	rows := func(p Params) int { return 128 * p.scale() }
	const cols = 64
	return Spec{
		Name:  "pca",
		Suite: "phoenix",
		Class: ClassEP,
		SegmentSize: func(p Params) int {
			r := rows(p)
			return 16*pg + r*8 + 4*pg
		},
		Prog: func(p Params) func(api.T) {
			r := rows(p)
			meansOff := 16 * pg
			return func(t api.T) {
				m := t.NewMutex()
				bar := t.NewBarrier(p.Threads)
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						lo, hi := chunkRange(r, p.Threads, id)
						row := make([]byte, cols*8)
						// Phase 1: row means (written to a shared page).
						var local uint64
						for i := lo; i < hi; i++ {
							inputBlock(t, p.Seed, i*cols*8, row)
							var s uint64
							for c := 0; c < cols*8; c += 8 {
								s += binary.LittleEndian.Uint64(row[c:])
							}
							t.Compute(cols * 24)
							api.PutU64(t, meansOff+8*i, s/cols)
							local += s
						}
						t.Lock(m)
						api.AddU64(t, 8, local)
						t.Unlock(m)
						t.BarrierWait(bar)
						// Phase 2: covariance samples against the means.
						var cov uint64
						for i := lo; i < hi; i++ {
							mean := api.U64(t, meansOff+8*i)
							inputBlock(t, p.Seed, i*cols*8, row)
							for c := 0; c < cols*8; c += 8 {
								d := binary.LittleEndian.Uint64(row[c:]) - mean
								cov += d * d
							}
							t.Compute(cols * 36)
						}
						t.Lock(m)
						api.AddU64(t, 16, cov)
						t.Unlock(m)
					}
				})
				api.PutU64(t, 0, api.U64(t, 8)^api.U64(t, 16))
			}
		},
	}
}

// kmeans: fork-join per iteration (Phoenix re-creates its worker pool each
// pass) — the benchmark that motivates thread reuse (§3.3) — plus
// centroid pages every worker reads and the root rewrites.
func kmeans() Spec {
	const k, dims = 8, 4
	points := func(p Params) int { return 4096 * p.scale() }
	return Spec{
		Name:  "kmeans",
		Suite: "phoenix",
		Class: ClassOther,
		SegmentSize: func(p Params) int {
			return 16*pg + (p.Threads+2)*pg
		},
		Prog: func(p Params) func(api.T) {
			n := points(p)
			centOff := pg                                        // k*dims*8 = 256B
			sumsOff := func(id int) int { return 16*pg + id*pg } // per-worker page
			const iters = 8
			return func(t api.T) {
				// Initial centroids.
				for c := 0; c < k*dims; c++ {
					api.PutU64(t, centOff+8*c, uint64(c*37+11))
				}
				for it := 0; it < iters; it++ {
					spawnWorkers(t, p.Threads, func(id int) func(api.T) {
						return func(t api.T) {
							cent := make([]byte, k*dims*8)
							t.Read(cent, centOff)
							lo, hi := chunkRange(n, p.Threads, id)
							sums := make([]uint64, k*(dims+1))
							buf := make([]byte, 256*dims)
							for off := lo; off < hi; off += 256 {
								c := hi - off
								if c > 256 {
									c = 256
								}
								inputBlock(t, p.Seed, off*dims, buf[:c*dims])
								for i := 0; i < c; i++ {
									best := int(buf[i*dims]) % k
									sums[best*(dims+1)]++
									for d := 0; d < dims; d++ {
										sums[best*(dims+1)+d] += uint64(buf[i*dims+d])
									}
								}
								t.Compute(int64(3 * c * k * dims))
							}
							out := make([]byte, len(sums)*8)
							for i, v := range sums {
								binary.LittleEndian.PutUint64(out[8*i:], v)
							}
							t.Write(out, sumsOff(id))
						}
					})
					// Root folds partial sums and rewrites the centroids.
					for c := 0; c < k; c++ {
						var cnt, acc uint64
						for id := 0; id < p.Threads; id++ {
							base := sumsOff(id) + c*(dims+1)*8
							cnt += api.U64(t, base)
							acc += api.U64(t, base+8)
						}
						if cnt == 0 {
							cnt = 1
						}
						api.PutU64(t, centOff+8*c*dims, acc/cnt)
					}
					t.Compute(int64(k * dims * p.Threads))
				}
				api.PutU64(t, 0, api.U64(t, centOff)+uint64(iters))
			}
		},
	}
}

// wordCount: hash-bucket inserts under per-bucket locks; medium critical
// sections at a moderate rate.
func wordCount() Spec {
	const buckets = 16
	return Spec{
		Name:  "word_count",
		Suite: "phoenix",
		Class: ClassOther,
		SegmentSize: func(p Params) int {
			return 16*pg + (buckets+1)*pg
		},
		Prog: func(p Params) func(api.T) {
			n := 128 * 1024 * p.scale()
			bucketOff := func(b int) int { return 16*pg + b*pg }
			return func(t api.T) {
				var locks [buckets]api.Mutex
				for i := range locks {
					locks[i] = t.NewMutex()
				}
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						lo, hi := chunkRange(n, p.Threads, id)
						buf := make([]byte, 2048)
						// Word density differs across file regions, so
						// threads reach their bucket locks at different
						// rates.
						perByte := []int64{30, 45, 60, 150}[id%4]
						for off := lo; off < hi; off += 2048 {
							c := hi - off
							if c > 2048 {
								c = 2048
							}
							inputBlock(t, p.Seed, off, buf[:c])
							t.Compute(perByte * int64(c))
							// ~2 "words" per chunk: insert each under its
							// bucket lock.
							for w := 0; w < 2 && w*1024 < c; w++ {
								word := buf[w*1024]
								b := int(word) % buckets
								t.Lock(locks[b])
								slot := bucketOff(b) + int(word)*8
								api.AddU64(t, slot, 1)
								t.Unlock(locks[b])
							}
						}
					}
				})
				var total uint64
				for b := 0; b < buckets; b++ {
					for wv := 0; wv < 256; wv++ {
						total += api.U64(t, bucketOff(b)+wv*8)
					}
				}
				api.PutU64(t, 0, total)
			}
		},
	}
}

// reverseIndex: the paper's fine-grained-locking stress — many locks,
// very short critical sections, high sync rate. This is where single
// -global-lock baselines and round-robin ordering fall apart and where
// coarsening matters most.
func reverseIndex() Spec {
	const locks = 64
	return Spec{
		Name:  "reverse_index",
		Suite: "phoenix",
		Class: ClassOther,
		SegmentSize: func(p Params) int {
			return 16*pg + (locks+1)*pg
		},
		Prog: func(p Params) func(api.T) {
			linksPerThread := 128 * p.scale()
			tabOff := func(l int) int { return 16*pg + l*pg }
			return func(t api.T) {
				var lk [locks]api.Mutex
				for i := range lk {
					lk[i] = t.NewMutex()
				}
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						rng := rand.New(rand.NewSource(p.Seed ^ int64(id)*7919))
						// Documents differ in size per thread (files are
						// partitioned by directory in Phoenix), so threads
						// synchronize at mismatched rates — the situation
						// where round-robin ordering collapses (Figure 1b).
						docCost := []int64{10_000, 16_000, 24_000, 60_000}[id%4]
						for i := 0; i < linksPerThread; i++ {
							t.Compute(docCost) // extract links from one document
							l := rng.Intn(locks)
							t.Lock(lk[l])
							api.AddU64(t, tabOff(l)+8*(i%128), uint64(id+1))
							t.Unlock(lk[l])
						}
					}
				})
				var total uint64
				for l := 0; l < locks; l++ {
					total += api.U64(t, tabOff(l))
				}
				api.PutU64(t, 0, total)
			}
		},
	}
}
