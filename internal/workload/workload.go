// Package workload implements synthetic equivalents of the 19 Phoenix,
// PARSEC and SPLASH-2 benchmark programs the paper evaluates (§5).
//
// The original benchmarks are C programs; what determines their behaviour
// under a deterministic runtime is not their arithmetic but their
// *synchronization skeleton* and *memory sharing pattern*: how often
// threads synchronize, with what primitive, how much local work separates
// sync ops, how many pages each thread dirties, and how much page-level
// write sharing exists. Each program here reproduces those properties for
// its namesake — the paper's own analysis (§5.2) characterizes the
// benchmarks exactly along these axes ("embarrassingly parallel",
// "barrier-heavy", fine-grained locking, pipeline) — while computing real
// (checksummable) results so determinism is observable.
//
// Every program is written once against internal/api and runs unchanged on
// Consequence, DThreads, DWC and the pthreads model.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/api"
)

// Params parameterizes a program instance.
type Params struct {
	// Threads is the worker thread count (the root thread coordinates and,
	// in most programs, also works).
	Threads int
	// Scale multiplies the default problem size. 1 is the harness default,
	// sized so a full figure sweep completes in seconds of host time.
	Scale int
	// Seed makes input generation deterministic.
	Seed int64
}

func (p Params) scale() int {
	if p.Scale <= 0 {
		return 1
	}
	return p.Scale
}

// Class groups benchmarks the way §5.2 does.
type Class string

// Benchmark classes.
const (
	ClassEP      Class = "embarrassingly-parallel"
	ClassBarrier Class = "barrier-heavy"
	ClassOther   Class = "other-determinism-overhead"
)

// Spec describes one benchmark.
type Spec struct {
	// Name matches the paper's benchmark name.
	Name string
	// Suite is "phoenix", "parsec" or "splash2".
	Suite string
	// Class is the §5.2 grouping.
	Class Class
	// SegmentSize returns the shared-segment size the program needs.
	SegmentSize func(p Params) int
	// Prog builds the program's root function.
	Prog func(p Params) func(api.T)
}

// All returns the 19 benchmark specs in the paper's presentation order
// (suite by suite).
func All() []Spec {
	return []Spec{
		histogram(), kmeans(), linearRegression(), matrixMultiply(), pca(),
		stringMatch(), wordCount(), reverseIndex(),
		canneal(), dedup(), ferret(), streamcluster(), swaptions(),
		luCB(), luNCB(), oceanCP(), radix(), waterNsquared(), waterSpatial(),
	}
}

// Names returns all benchmark names in order.
func Names() []string {
	var ns []string
	for _, s := range All() {
		ns = append(ns, s.Name)
	}
	return ns
}

// ByName looks a spec up.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// --- shared helpers ---

// fill writes n pseudo-random bytes at off, in page-sized chunks, from the
// root thread. Use only for arrays the program will mutate and share —
// fills pay full CoW/commit costs like any other write.
func fill(t api.T, off, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, 4096)
	for n > 0 {
		c := len(buf)
		if c > n {
			c = n
		}
		rng.Read(buf[:c])
		t.Write(buf[:c], off)
		off += c
		n -= c
	}
}

// inputBlock generates the input bytes a real benchmark would read from
// its mmap'd, read-only input file: deterministic in (seed, off), charged
// as the instructions of a streaming read, but causing no copy-on-write or
// commit traffic — mmap'd files live outside the Conversion-managed
// globals/heap segments (§2.5 note 2), so deterministic runtimes pay
// nothing extra for them.
func inputBlock(t api.T, seed int64, off int, buf []byte) {
	rng := rand.New(rand.NewSource(seed ^ int64(off)*2654435761))
	rng.Read(buf)
	t.Compute(2 + int64(len(buf)+7)/8)
}

// spawnWorkers starts fn(id) on workers 1..n-1 and runs fn(0) on the root,
// then joins. Most benchmarks follow this shape.
func spawnWorkers(t api.T, n int, fn func(id int) func(api.T)) {
	var hs []api.Handle
	for i := 1; i < n; i++ {
		hs = append(hs, t.Spawn(fn(i)))
	}
	fn(0)(t)
	for _, h := range hs {
		t.Join(h)
	}
}

// chunkRange splits [0,n) into `parts` contiguous ranges and returns the
// id-th one.
func chunkRange(n, parts, id int) (lo, hi int) {
	per := n / parts
	lo = id * per
	hi = lo + per
	if id == parts-1 {
		hi = n
	}
	return
}

// sortedKeys returns map keys in sorted order (deterministic iteration).
func sortedKeys(m map[int]int) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
