package workload

import (
	"math/rand"

	"repro/conc"
	"repro/internal/api"
)

// PARSEC suite: pipelines (dedup, ferret), barrier-heavy kernels
// (canneal, streamcluster) and one EP kernel (swaptions).

// swaptions: EP Monte-Carlo pricing, long compute chunks, private result
// slots.
func swaptions() Spec {
	return Spec{
		Name:  "swaptions",
		Suite: "parsec",
		Class: ClassEP,
		SegmentSize: func(p Params) int {
			return 16*pg + (p.Threads+1)*pg
		},
		Prog: func(p Params) func(api.T) {
			perThread := 4 * p.scale()
			slotOff := func(id int) int { return 16*pg + id*pg }
			return func(t api.T) {
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						var acc uint64
						for s := 0; s < perThread; s++ {
							t.Compute(180_000) // one swaption's Monte-Carlo paths
							acc = acc*2654435761 + uint64(id*1000+s)
							api.PutU64(t, slotOff(id)+8*s, acc)
						}
					}
				})
				var total uint64
				for id := 0; id < p.Threads; id++ {
					total ^= api.U64(t, slotOff(id))
				}
				api.PutU64(t, 0, total)
			}
		},
	}
}

// streamcluster: barrier-heavy: per iteration every worker evaluates its
// point range, publishes a local cost, and thread 0 reduces between two
// barriers.
func streamcluster() Spec {
	return Spec{
		Name:  "streamcluster",
		Suite: "parsec",
		Class: ClassBarrier,
		SegmentSize: func(p Params) int {
			return 16*pg + 4*pg
		},
		Prog: func(p Params) func(api.T) {
			iters := 12 * p.scale()
			costOff := func(id int) int { return 16*pg + 8*id } // shared page
			medianOff := 17 * pg
			return func(t api.T) {
				bar := t.NewBarrier(p.Threads)
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						for it := 0; it < iters; it++ {
							t.Compute(180_000)
							api.PutU64(t, costOff(id), uint64((id+1)*(it+1)))
							t.BarrierWait(bar)
							if id == 0 {
								var sum uint64
								for w := 0; w < p.Threads; w++ {
									sum += api.U64(t, costOff(w))
								}
								t.Compute(int64(20 * p.Threads))
								api.PutU64(t, medianOff+8*(it%256), sum)
							}
							t.BarrierWait(bar)
						}
					}
				})
				api.PutU64(t, 0, api.U64(t, medianOff))
			}
		},
	}
}

// canneal: barrier-heavy with scattered writes across a large shared
// array: every thread dirties many pages that other threads also write,
// maximizing page conflicts, byte merges, propagation volume and GC
// pressure — the paper's memory-blowup benchmark (Figures 12, 15, 16).
func canneal() Spec {
	elemsBytes := func(p Params) int { return 512 * 1024 * p.scale() }
	return Spec{
		Name:  "canneal",
		Suite: "parsec",
		Class: ClassBarrier,
		SegmentSize: func(p Params) int {
			return 16*pg + elemsBytes(p)
		},
		Prog: func(p Params) func(api.T) {
			nb := elemsBytes(p)
			arrOff := 16 * pg
			const iters = 10
			const swapsPerIter = 24
			return func(t api.T) {
				fill(t, arrOff, nb, p.Seed)
				bar := t.NewBarrier(p.Threads)
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						for it := 0; it < iters; it++ {
							rng := rand.New(rand.NewSource(p.Seed ^ int64(id*1_000_003+it)))
							var a, b [16]byte
							for s := 0; s < swapsPerIter; s++ {
								i := rng.Intn(nb/16-1) * 16
								j := rng.Intn(nb/16-1) * 16
								t.Read(a[:], arrOff+i)
								t.Read(b[:], arrOff+j)
								t.Compute(20_000) // routing-cost delta over the nets
								t.Write(b[:], arrOff+i)
								t.Write(a[:], arrOff+j)
							}
							t.BarrierWait(bar)
						}
					}
				})
				api.PutU64(t, 0, api.U64(t, arrOff)^api.U64(t, arrOff+nb-8))
			}
		},
	}
}

// dedup: three-stage pipeline (chunk → dedup → compress) over bounded
// queues, with bucket locks in the dedup stage.
func dedup() Spec {
	const qcap = 24
	const buckets = 8
	return Spec{
		Name:  "dedup",
		Suite: "parsec",
		Class: ClassOther,
		SegmentSize: func(p Params) int {
			return 16*pg + 2*pg + (buckets+2)*pg + (p.Threads+1)*pg
		},
		Prog: func(p Params) func(api.T) {
			items := 48 * p.scale()
			q1Off := 16 * pg
			q2Off := 16*pg + conc.QueueBytes(qcap) + 64
			hashOff := func(b int) int { return 18*pg + b*pg }
			outOff := func(id int) int { return (18 + buckets + 1 + id) * pg }
			return func(t api.T) {
				nChunk := maxInt(1, p.Threads/3)
				nDedup := maxInt(1, p.Threads/3)
				nComp := maxInt(1, p.Threads-nChunk-nDedup)
				q1 := conc.NewQueue(t, q1Off, qcap, nChunk)
				q2 := conc.NewQueue(t, q2Off, qcap, nDedup)
				var lk [buckets]api.Mutex
				for i := range lk {
					lk[i] = t.NewMutex()
				}
				var hs []api.Handle
				// Stage 1: chunkers.
				for c := 0; c < nChunk; c++ {
					c := c
					hs = append(hs, t.Spawn(func(t api.T) {
						lo, hi := chunkRange(items, nChunk, c)
						for i := lo; i < hi; i++ {
							t.Compute(120_000) // rolling-hash chunking
							q1.Put(t, uint64(i+1))
						}
						q1.ProducerDone(t)
					}))
				}
				// Stage 2: dedup (hash-table lookups under bucket locks).
				for d := 0; d < nDedup; d++ {
					hs = append(hs, t.Spawn(func(t api.T) {
						for {
							v, ok := q1.Get(t)
							if !ok {
								break
							}
							t.Compute(220_000) // SHA1 of the chunk
							b := int(v) % buckets
							t.Lock(lk[b])
							seen := api.U64(t, hashOff(b)+8*int(v%128))
							api.PutU64(t, hashOff(b)+8*int(v%128), seen+1)
							t.Unlock(lk[b])
							if seen == 0 {
								q2.Put(t, v)
							}
						}
						q2.ProducerDone(t)
					}))
				}
				// Stage 3: compressors.
				for cm := 0; cm < nComp; cm++ {
					cm := cm
					hs = append(hs, t.Spawn(func(t api.T) {
						var n uint64
						for {
							v, ok := q2.Get(t)
							if !ok {
								break
							}
							t.Compute(500_000) // compress the unique chunk
							n += v
						}
						api.PutU64(t, outOff(cm), n)
					}))
				}
				for _, h := range hs {
					t.Join(h)
				}
				var total uint64
				for cm := 0; cm < nComp; cm++ {
					total += api.U64(t, outOff(cm))
				}
				api.PutU64(t, 0, total)
			}
		},
	}
}

// ferret: the paper's hardest pipeline (§5.2). The first spawned thread
// (ferret_1) performs a high rate of short-critical-section queue
// operations; the middle ranks alternate long compute chunks with
// condition-variable waits (ferret_n).
func ferret() Spec {
	const qcap = 32
	return Spec{
		Name:  "ferret",
		Suite: "parsec",
		Class: ClassOther,
		SegmentSize: func(p Params) int {
			return 16*pg + 4*pg
		},
		Prog: func(p Params) func(api.T) {
			items := 64 * p.scale()
			q1Off := 16 * pg
			q2Off := 16*pg + conc.QueueBytes(qcap) + 64
			q3Off := 16*pg + 2*(conc.QueueBytes(qcap)+64)
			rankOff := 17 * pg
			return func(t api.T) {
				nMid := maxInt(1, (p.Threads-2)/2)
				q1 := conc.NewQueue(t, q1Off, qcap, 1)
				q2 := conc.NewQueue(t, q2Off, qcap, nMid)
				q3 := conc.NewQueue(t, q3Off, qcap, nMid)
				rankLock := t.NewMutex()
				var hs []api.Handle
				// Stage 1 (ferret_1): image segmentation — short chunks,
				// very frequent queue ops.
				hs = append(hs, t.Spawn(func(t api.T) {
					for i := 0; i < items; i++ {
						t.Compute(8_000)
						q1.Put(t, uint64(i+1))
					}
					q1.ProducerDone(t)
				}))
				// Stage 2: feature extraction — long chunks.
				for w := 0; w < nMid; w++ {
					hs = append(hs, t.Spawn(func(t api.T) {
						for {
							v, ok := q1.Get(t)
							if !ok {
								break
							}
							t.Compute(200_000)
							q2.Put(t, v*3)
						}
						q2.ProducerDone(t)
					}))
				}
				// Stage 3: indexing/query — long chunks.
				for w := 0; w < nMid; w++ {
					hs = append(hs, t.Spawn(func(t api.T) {
						for {
							v, ok := q2.Get(t)
							if !ok {
								break
							}
							t.Compute(280_000)
							q3.Put(t, v+7)
						}
						q3.ProducerDone(t)
					}))
				}
				// Stage 4: rank aggregation under a single lock.
				hs = append(hs, t.Spawn(func(t api.T) {
					for {
						v, ok := q3.Get(t)
						if !ok {
							break
						}
						t.Compute(2_000)
						t.Lock(rankLock)
						api.AddU64(t, rankOff, v)
						t.Unlock(rankLock)
					}
				}))
				for _, h := range hs {
					t.Join(h)
				}
				api.PutU64(t, 0, api.U64(t, rankOff))
			}
		},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
