package workload

import (
	"encoding/binary"
	"math/rand"

	"repro/internal/api"
)

// SPLASH-2 suite: barrier-structured scientific kernels. The pair lu_cb /
// lu_ncb isolates the effect of page-level write sharing (contiguous vs
// non-contiguous blocks); ocean_cp stresses barrier frequency with large
// dirty sets; water_nsquared mixes fine-grained locks into a barrier
// program.

// radix: per-digit passes of (local histogram, barrier, serial prefix sum,
// barrier, permute, barrier).
func radix() Spec {
	keys := func(p Params) int { return 16384 * p.scale() }
	const radixBits = 8
	const passes = 3
	return Spec{
		Name:  "radix",
		Suite: "splash2",
		Class: ClassBarrier,
		SegmentSize: func(p Params) int {
			n := keys(p)
			return 16*pg + 2*n*4 + (p.Threads+2)*pg
		},
		Prog: func(p Params) func(api.T) {
			n := keys(p)
			srcOff := 16 * pg
			dstOff := srcOff + n*4
			histOff := func(id int) int { return srcOff + 2*n*4 + id*pg }
			offsOff := srcOff + 2*n*4 + p.Threads*pg
			return func(t api.T) {
				fill(t, srcOff, n*4, p.Seed)
				bar := t.NewBarrier(p.Threads)
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						src, dst := srcOff, dstOff
						for pass := 0; pass < passes; pass++ {
							shift := uint(pass * radixBits)
							lo, hi := chunkRange(n, p.Threads, id)
							// Local histogram.
							var hist [1 << radixBits]uint32
							buf := make([]byte, 4096)
							for off := lo; off < hi; off += 1024 {
								c := hi - off
								if c > 1024 {
									c = 1024
								}
								t.Read(buf[:c*4], src+off*4)
								for i := 0; i < c; i++ {
									k := binary.LittleEndian.Uint32(buf[i*4:])
									hist[(k>>shift)&0xFF]++
								}
								t.Compute(int64(15 * c))
							}
							out := make([]byte, len(hist)*4)
							for i, v := range hist {
								binary.LittleEndian.PutUint32(out[4*i:], v)
							}
							t.Write(out, histOff(id))
							t.BarrierWait(bar)
							// Serial prefix sum by thread 0.
							if id == 0 {
								var offs [1 << radixBits]uint32
								var run uint32
								hb := make([]byte, len(hist)*4)
								for d := 0; d < 1<<radixBits; d++ {
									for w := 0; w < p.Threads; w++ {
										t.Read(hb[:4], histOff(w)+4*d)
										cnt := binary.LittleEndian.Uint32(hb)
										offs[d] = run // simplified: per-digit base
										run += cnt
									}
								}
								t.Compute(int64(p.Threads * (1 << radixBits)))
								ob := make([]byte, len(offs)*4)
								for i, v := range offs {
									binary.LittleEndian.PutUint32(ob[4*i:], v)
								}
								t.Write(ob, offsOff)
							}
							t.BarrierWait(bar)
							// Permute own range into dst (scattered writes).
							for off := lo; off < hi; off += 1024 {
								c := hi - off
								if c > 1024 {
									c = 1024
								}
								t.Read(buf[:c*4], src+off*4)
								t.Compute(int64(20 * c))
								// Write back a digit-sorted block (abstracted
								// to one contiguous write per block plus a
								// scattered tail touching other regions).
								t.Write(buf[:c*4], dst+off*4)
							}
							t.BarrierWait(bar)
							src, dst = dst, src
						}
					}
				})
				api.PutU64(t, 0, api.U64(t, srcOff)^api.U64(t, dstOff))
			}
		},
	}
}

// luDims returns the matrix dimension for the LU kernels.
func luDims(p Params) int { return 128 * p.scale() }

const luBlock = 32

// luCommon builds the LU factorization skeleton; contiguous selects the
// lu_cb (block-copied, page-disjoint writes) or lu_ncb (row-major
// interleaved, page-shared writes) storage layout.
func luCommon(name string, contiguous bool) Spec {
	return Spec{
		Name:  name,
		Suite: "splash2",
		Class: ClassBarrier,
		SegmentSize: func(p Params) int {
			n := luDims(p)
			return 16*pg + n*n*8 + p.Threads*pg + pg
		},
		Prog: func(p Params) func(api.T) {
			n := luDims(p)
			matOff := 16 * pg
			steps := n / luBlock
			return func(t api.T) {
				fill(t, matOff, n*n*8, p.Seed)
				bar := t.NewBarrier(p.Threads)
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						row := make([]byte, luBlock*8)
						for step := 0; step < steps; step++ {
							// Diagonal factorization by the owning thread.
							if step%p.Threads == id {
								t.Compute(int64(5 * luBlock * luBlock * luBlock))
							}
							t.BarrierWait(bar)
							// Update trailing blocks owned by this thread.
							for bj := step + 1; bj < steps; bj++ {
								if bj%p.Threads != id {
									continue
								}
								t.Compute(int64(8 * luBlock * luBlock * luBlock))
								for r := 0; r < luBlock; r++ {
									var off int
									if contiguous {
										// lu_cb: blocks stored contiguously —
										// each block is its own page run.
										blockBase := matOff + (step*steps+bj)*luBlock*luBlock*8
										off = blockBase + r*luBlock*8
									} else {
										// lu_ncb: row-major — each 256-byte
										// strip shares its page with other
										// threads' strips.
										off = matOff + ((step*luBlock+r)*n+bj*luBlock)*8
									}
									t.Read(row, off)
									for i := 0; i < luBlock*8; i += 8 {
										v := binary.LittleEndian.Uint64(row[i:])
										binary.LittleEndian.PutUint64(row[i:], v*2654435761+uint64(step))
									}
									t.Write(row, off)
								}
							}
							t.BarrierWait(bar)
						}
					}
				})
				api.PutU64(t, 0, api.U64(t, matOff)^api.U64(t, matOff+n*n*8-8))
			}
		},
	}
}

func luCB() Spec  { return luCommon("lu_cb", true) }
func luNCB() Spec { return luCommon("lu_ncb", false) }

// oceanCP: grid relaxation with row-band ownership and many barriers;
// bands abut on shared boundary pages, and every iteration dirties the
// whole band — high commit volume at every barrier.
func oceanCP() Spec {
	grid := func(p Params) int { return 192 * p.scale() }
	return Spec{
		Name:  "ocean_cp",
		Suite: "splash2",
		Class: ClassBarrier,
		SegmentSize: func(p Params) int {
			g := grid(p)
			return 16*pg + 2*g*g*8
		},
		Prog: func(p Params) func(api.T) {
			g := grid(p)
			gridOff := func(which int) int { return 16*pg + which*g*g*8 }
			const iters = 12
			return func(t api.T) {
				fill(t, gridOff(0), g*g*8, p.Seed)
				bar := t.NewBarrier(p.Threads)
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						lo, hi := chunkRange(g, p.Threads, id)
						row := make([]byte, g*8)
						for it := 0; it < iters; it++ {
							src, dst := gridOff(it%2), gridOff((it+1)%2)
							for r := lo; r < hi; r++ {
								t.Read(row, src+r*g*8)
								for i := 0; i < g*8; i += 8 {
									v := binary.LittleEndian.Uint64(row[i:])
									binary.LittleEndian.PutUint64(row[i:], v/2+uint64(it))
								}
								t.Compute(int64(100 * g))
								t.Write(row, dst+r*g*8)
							}
							t.BarrierWait(bar)
						}
					}
				})
				api.PutU64(t, 0, api.U64(t, gridOff(iters%2)))
			}
		},
	}
}

// waterNsquared: per-molecule locks with short critical sections at a
// high rate, plus a barrier per timestep — the benchmark whose 32-thread
// behaviour exposes Consequence's coarsening pathology (§5, §6).
func waterNsquared() Spec {
	const locks = 32
	return Spec{
		Name:  "water_nsquared",
		Suite: "splash2",
		Class: ClassBarrier,
		SegmentSize: func(p Params) int {
			return 16*pg + (locks+1)*pg
		},
		Prog: func(p Params) func(api.T) {
			molsPerThread := 8 * p.scale()
			const partners = 4
			const steps = 4
			forceOff := func(l int) int { return 16*pg + l*pg }
			return func(t api.T) {
				var lk [locks]api.Mutex
				for i := range lk {
					lk[i] = t.NewMutex()
				}
				bar := t.NewBarrier(p.Threads)
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						rng := rand.New(rand.NewSource(p.Seed ^ int64(id*613)))
						for s := 0; s < steps; s++ {
							for i := 0; i < molsPerThread; i++ {
								for pr := 0; pr < partners; pr++ {
									t.Compute(30_000) // pair force evaluation
									l := rng.Intn(locks)
									t.Lock(lk[l])
									api.AddU64(t, forceOff(l)+8*(i%64), uint64(id+s+1))
									t.Unlock(lk[l])
								}
							}
							t.BarrierWait(bar)
						}
					}
				})
				var total uint64
				for l := 0; l < locks; l++ {
					total += api.U64(t, forceOff(l))
				}
				api.PutU64(t, 0, total)
			}
		},
	}
}

// waterSpatial: box decomposition — mostly private work with occasional
// boundary-box locking and a barrier per timestep.
func waterSpatial() Spec {
	const boxes = 64
	return Spec{
		Name:  "water_spatial",
		Suite: "splash2",
		Class: ClassBarrier,
		SegmentSize: func(p Params) int {
			return 16*pg + (boxes+p.Threads+1)*pg
		},
		Prog: func(p Params) func(api.T) {
			const steps = 6
			work := 50_000 * int64(p.scale())
			boxOff := func(b int) int { return 16*pg + b*pg }
			privOff := func(id int) int { return 16*pg + (boxes+id)*pg }
			return func(t api.T) {
				var lk [8]api.Mutex
				for i := range lk {
					lk[i] = t.NewMutex()
				}
				bar := t.NewBarrier(p.Threads)
				spawnWorkers(t, p.Threads, func(id int) func(api.T) {
					return func(t api.T) {
						for s := 0; s < steps; s++ {
							lo, hi := chunkRange(boxes, p.Threads, id)
							for b := lo; b < hi; b++ {
								t.Compute(work)
								api.PutU64(t, privOff(id)+8*(b%256), uint64(b*s))
								// Boundary boxes need a lock.
								if b == lo || b == hi-1 {
									l := b % len(lk)
									t.Lock(lk[l])
									api.AddU64(t, boxOff(b), uint64(s+1))
									t.Unlock(lk[l])
								}
							}
							t.BarrierWait(bar)
						}
					}
				})
				var total uint64
				for b := 0; b < boxes; b++ {
					total += api.U64(t, boxOff(b))
				}
				api.PutU64(t, 0, total)
			}
		},
	}
}
