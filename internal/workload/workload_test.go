package workload_test

import (
	"testing"

	"repro/internal/api"
	"repro/internal/baseline/dthreads"
	"repro/internal/baseline/dwc"
	"repro/internal/baseline/pth"
	"repro/internal/baseline/rfdet"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host"
	"repro/internal/host/simhost"
	"repro/internal/workload"
)

func makeRuntime(t *testing.T, name string, segSize int, h host.Host) api.Runtime {
	t.Helper()
	var rt api.Runtime
	var err error
	m := costmodel.Default()
	switch name {
	case "consequence-ic":
		c := det.Default()
		c.SegmentSize = segSize
		rt, err = det.New(c, h)
	case "consequence-rr":
		c := det.Default()
		c.Policy = 1 // clock.PolicyRR
		c.SegmentSize = segSize
		rt, err = det.New(c, h)
	case "dthreads":
		rt, err = dthreads.New(dthreads.Config{SegmentSize: segSize, Model: m}, h)
	case "dwc":
		rt, err = dwc.New(dwc.Config{SegmentSize: segSize, Model: m}, h)
	case "pthreads":
		rt, err = pth.New(pth.Config{SegmentSize: segSize, Model: m}, h)
	case "rfdet-lrc":
		rt, err = rfdet.New(rfdet.Config{SegmentSize: segSize, Model: m}, h)
	default:
		t.Fatalf("unknown runtime %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestEveryBenchmarkOnEveryRuntime is the big cross-product smoke test:
// all 19 programs complete on all six runtimes on the simulation host.
func TestEveryBenchmarkOnEveryRuntime(t *testing.T) {
	runtimes := []string{"consequence-ic", "consequence-rr", "dthreads", "dwc", "pthreads", "rfdet-lrc"}
	for _, spec := range workload.All() {
		for _, rtName := range runtimes {
			spec, rtName := spec, rtName
			t.Run(spec.Name+"/"+rtName, func(t *testing.T) {
				t.Parallel()
				p := workload.Params{Threads: 4, Scale: 1, Seed: 12345}
				rt := makeRuntime(t, rtName, spec.SegmentSize(p), simhost.New(costmodel.Default()))
				if err := rt.Run(spec.Prog(p)); err != nil {
					t.Fatalf("%s on %s: %v", spec.Name, rtName, err)
				}
				st := rt.Stats()
				if st.WallNS <= 0 {
					t.Errorf("no time elapsed: %+v", st)
				}
			})
		}
	}
}

// TestBenchmarksDeterministicOnDetRuntimes: repeated sim runs of each
// program on each deterministic runtime agree on memory checksums.
func TestBenchmarksDeterministicOnDetRuntimes(t *testing.T) {
	runtimes := []string{"consequence-ic", "consequence-rr", "dthreads", "dwc", "rfdet-lrc"}
	for _, spec := range workload.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			p := workload.Params{Threads: 3, Scale: 1, Seed: 7}
			for _, rtName := range runtimes {
				var sums []uint64
				for rep := 0; rep < 2; rep++ {
					rt := makeRuntime(t, rtName, spec.SegmentSize(p), simhost.New(costmodel.Default()))
					if err := rt.Run(spec.Prog(p)); err != nil {
						t.Fatalf("%s/%s: %v", spec.Name, rtName, err)
					}
					sums = append(sums, rt.Checksum())
				}
				if sums[0] != sums[1] {
					t.Errorf("%s on %s: nondeterministic (%x vs %x)", spec.Name, rtName, sums[0], sums[1])
				}
			}
		})
	}
}

// TestOddThreadCounts: uneven partitions must still terminate and agree.
func TestOddThreadCounts(t *testing.T) {
	for _, spec := range workload.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			for _, threads := range []int{1, 2, 5} {
				p := workload.Params{Threads: threads, Scale: 1, Seed: 3}
				rt := makeRuntime(t, "consequence-ic", spec.SegmentSize(p), simhost.New(costmodel.Default()))
				if err := rt.Run(spec.Prog(p)); err != nil {
					t.Fatalf("%s threads=%d: %v", spec.Name, threads, err)
				}
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	if n := len(workload.All()); n != 19 {
		t.Fatalf("suite has %d benchmarks, want 19 (the paper's count)", n)
	}
	seen := map[string]bool{}
	for _, s := range workload.All() {
		if seen[s.Name] {
			t.Errorf("duplicate benchmark %q", s.Name)
		}
		seen[s.Name] = true
		if s.Suite != "phoenix" && s.Suite != "parsec" && s.Suite != "splash2" {
			t.Errorf("%s: bad suite %q", s.Name, s.Suite)
		}
		p := workload.Params{Threads: 2, Scale: 1}
		if s.SegmentSize(p) <= 0 {
			t.Errorf("%s: non-positive segment size", s.Name)
		}
	}
	if _, err := workload.ByName("ferret"); err != nil {
		t.Error(err)
	}
	if _, err := workload.ByName("no-such"); err == nil {
		t.Error("ByName accepted unknown benchmark")
	}
}
