package workload_test

import (
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
	"repro/internal/workload"
)

// TestCrossHostTraceEquality is the strongest determinism statement the
// repository makes: for real benchmark programs, the *entire
// synchronization order* (every lock, unlock, wait, signal, barrier,
// spawn, join, exit — with logical clocks) is identical between the
// discrete-event simulator and actual parallel goroutine execution under
// schedule perturbation. A representative from each workload class runs
// here; the full matrix lives in the figure harness.
func TestCrossHostTraceEquality(t *testing.T) {
	benches := []string{"reverse_index", "ferret", "ocean_cp", "kmeans", "histogram"}
	if testing.Short() {
		benches = benches[:2]
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			spec, err := workload.ByName(bench)
			if err != nil {
				t.Fatal(err)
			}
			p := workload.Params{Threads: 4, Scale: 1, Seed: 21}
			runOn := func(h host.Host) (uint64, uint64) {
				c := det.Default()
				c.SegmentSize = spec.SegmentSize(p)
				rt, err := det.New(c, h)
				if err != nil {
					t.Fatal(err)
				}
				if err := rt.Run(spec.Prog(p)); err != nil {
					t.Fatal(err)
				}
				return rt.Checksum(), rt.Trace().Hash()
			}
			simSum, simTrace := runOn(simhost.New(costmodel.Default()))
			realSum, realTrace := runOn(realhost.New(80*time.Microsecond, 31))
			if simSum != realSum {
				t.Errorf("%s: memory diverges between hosts (%x vs %x)", bench, simSum, realSum)
			}
			if simTrace != realTrace {
				t.Errorf("%s: sync order diverges between hosts (%x vs %x)", bench, simTrace, realTrace)
			}
		})
	}
}
