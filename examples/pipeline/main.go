// Pipeline: a ferret-style pipeline over bounded queues (repro/conc). The
// interesting nondeterminism in ordinary pipelines is which worker
// processes which item; under Consequence that assignment — and every
// derived result — is fixed across runs.
package main

import (
	"fmt"

	consequence "repro"
	"repro/conc"
)

const (
	items   = 40
	workers = 3
)

// pipeline is the program: a producer, `workers` processing threads, and a
// collector, chained by two queues. assign records which worker handled
// each item; sum collects Σ(item²).
func pipeline(t consequence.T, assign *[items]uint64, sum *uint64) {
	in := conc.NewQueue(t, 256, 4, 1)
	out := conc.NewQueue(t, 512, 4, workers)
	var hs []consequence.Handle
	for w := 1; w <= workers; w++ {
		w := w
		hs = append(hs, t.Spawn(func(t consequence.T) {
			for {
				v, ok := in.Get(t)
				if !ok {
					break
				}
				t.Compute(25_000) // "process" the item
				consequence.PutU64(t, 4096+8*int(v-1), uint64(w))
				out.Put(t, v*v)
			}
			out.ProducerDone(t)
		}))
	}
	collector := t.Spawn(func(t consequence.T) {
		var s uint64
		for {
			v, ok := out.Get(t)
			if !ok {
				break
			}
			s += v
		}
		consequence.PutU64(t, 8192, s)
	})
	for i := 1; i <= items; i++ {
		t.Compute(500)
		in.Put(t, uint64(i))
	}
	in.ProducerDone(t)
	for _, h := range hs {
		t.Join(h)
	}
	t.Join(collector)
	for i := 0; i < items; i++ {
		assign[i] = consequence.U64(t, 4096+8*i)
	}
	*sum = consequence.U64(t, 8192)
}

func main() {
	var firstAssign string
	for rep := 1; rep <= 2; rep++ {
		rt, err := consequence.New(consequence.WithSegmentSize(1 << 20))
		if err != nil {
			panic(err)
		}
		var assign [items]uint64
		var sum uint64
		if err := rt.Run(func(t consequence.T) { pipeline(t, &assign, &sum) }); err != nil {
			panic(err)
		}
		line := ""
		for _, w := range assign {
			line += fmt.Sprint(w)
		}
		fmt.Printf("run %d: item→worker %s  Σ(item²)=%d\n", rep, line, sum)
		switch {
		case rep == 1:
			firstAssign = line
		case line == firstAssign:
			fmt.Println("work distribution identical across runs — deterministic ✓")
		default:
			fmt.Println("DIVERGENCE — this is a bug")
		}
	}
}
