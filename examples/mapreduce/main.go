// Mapreduce: a deterministic map-reduce over a shared corpus, exercising
// the full repro/conc toolkit — a work Queue feeding mappers, a Once that
// lazily builds the stop-word table, an RWMutex protecting the shared
// result table (mappers write, a concurrent reporter reads), and a
// WaitGroup for completion. The histogram it produces is identical on
// every run, as is the sequence of in-progress totals the reporter saw.
package main

import (
	"fmt"

	consequence "repro"
	"repro/conc"
)

const (
	mappers  = 4
	chunks   = 48
	tableOff = 8192  // 26 letter buckets × 8 bytes
	stopOff  = 12288 // stop-word table built by Once
	doneOff  = 16384 // completion flag for the reporter
	snapOff  = 20480 // reporter's snapshots
)

func program(t consequence.T, snapshots *[]uint64) {
	work := conc.NewQueue(t, 256, 8, 1)
	wg := conc.NewWaitGroup(t, 768, mappers)
	once := conc.NewOnce(t, 776)
	table := conc.NewRWMutex(t, 800)

	// Mappers: deterministic "documents" derived from the chunk id.
	for m := 0; m < mappers; m++ {
		t.Spawn(func(t consequence.T) {
			for {
				chunk, ok := work.Get(t)
				if !ok {
					break
				}
				// Lazily build the stop-word table, exactly once.
				once.Do(t, func(t consequence.T) {
					t.Compute(10_000)
					for i := 0; i < 4; i++ {
						consequence.PutU64(t, stopOff+8*i, uint64(i*7)%26)
					}
				})
				// "Parse" the chunk: count first letters, skipping stop
				// letters.
				t.Compute(20_000)
				var local [26]uint64
				for w := 0; w < 16; w++ {
					letter := (chunk*31 + uint64(w)*17) % 26
					stopped := false
					for i := 0; i < 4; i++ {
						if consequence.U64(t, stopOff+8*i) == letter {
							stopped = true
						}
					}
					if !stopped {
						local[letter]++
					}
				}
				// Reduce into the shared table under the write lock.
				table.Lock(t)
				for l, n := range local {
					if n > 0 {
						consequence.AddU64(t, tableOff+8*l, n)
					}
				}
				table.Unlock(t)
			}
			wg.Done(t)
		})
	}

	// Reporter: concurrently reads consistent totals under the read lock.
	reporter := t.Spawn(func(t consequence.T) {
		snap := 0
		for consequence.U64(t, doneOff) == 0 {
			table.RLock(t)
			var total uint64
			for l := 0; l < 26; l++ {
				total += consequence.U64(t, tableOff+8*l)
			}
			table.RUnlock(t)
			consequence.PutU64(t, snapOff+8*snap, total)
			snap++
			t.Compute(60_000) // reporting interval
		}
		consequence.PutU64(t, snapOff+2040, uint64(snap))
	})

	// Producer: enqueue the chunks, then wait for the mappers.
	for c := 0; c < chunks; c++ {
		work.Put(t, uint64(c))
	}
	work.ProducerDone(t)
	wg.Wait(t)
	consequence.PutU64(t, doneOff, 1)
	t.Join(reporter)

	n := consequence.U64(t, snapOff+2040)
	*snapshots = nil
	for i := uint64(0); i < n; i++ {
		*snapshots = append(*snapshots, consequence.U64(t, snapOff+8*int(i)))
	}
}

func main() {
	var prev []uint64
	var prevSum uint64
	for rep := 1; rep <= 2; rep++ {
		rt, err := consequence.New(consequence.WithSegmentSize(1 << 20))
		if err != nil {
			panic(err)
		}
		var snaps []uint64
		if err := rt.Run(func(t consequence.T) { program(t, &snaps) }); err != nil {
			panic(err)
		}
		sum := rt.Checksum()
		fmt.Printf("run %d: %d reporter snapshots %v, checksum %016x\n",
			rep, len(snaps), snaps, sum)
		if rep == 2 {
			same := sum == prevSum && len(snaps) == len(prev)
			for i := range snaps {
				if same && snaps[i] != prev[i] {
					same = false
				}
			}
			if same {
				fmt.Println("even the reporter's mid-flight observations are identical — deterministic ✓")
			} else {
				fmt.Println("DIVERGENCE — this is a bug")
			}
		}
		prev, prevSum = snaps, sum
	}
}
