// Kmeansdemo: iterative fork-join clustering in the style of Phoenix
// kmeans — the workload class that motivates the paper's thread-reuse
// optimization (§3.3). Each iteration spawns fresh workers; with the
// thread pool enabled later spawns recycle earlier workers' memory views.
// The demo runs on the simulated-time host to show the optimization's
// modeled effect, then once on the real host to show the clustering
// itself is deterministic.
package main

import (
	"fmt"

	consequence "repro"
)

const (
	points   = 2000
	k        = 4
	dims     = 2
	iters    = 6
	workers  = 4
	centOff  = 0    // k centroids × dims × 8 bytes
	sumsOff  = 4096 // per-worker partial sums, one page each
	pointOff = 65536
)

func program(t consequence.T) {
	// Deterministic input points.
	for i := 0; i < points; i++ {
		consequence.PutU64(t, pointOff+16*i, uint64((i*37)%100))
		consequence.PutU64(t, pointOff+16*i+8, uint64((i*61)%100))
	}
	// Initial centroids.
	for c := 0; c < k; c++ {
		consequence.PutU64(t, centOff+16*c, uint64(c*25))
		consequence.PutU64(t, centOff+16*c+8, uint64(c*25))
	}
	for it := 0; it < iters; it++ {
		var hs []consequence.Handle
		for w := 0; w < workers; w++ {
			w := w
			hs = append(hs, t.Spawn(func(t consequence.T) {
				// Assign this worker's point range to nearest centroids.
				var cx, cy, cn [k]uint64
				lo, hi := w*points/workers, (w+1)*points/workers
				for i := lo; i < hi; i++ {
					x := consequence.U64(t, pointOff+16*i)
					y := consequence.U64(t, pointOff+16*i+8)
					best, bestD := 0, ^uint64(0)
					for c := 0; c < k; c++ {
						mx := consequence.U64(t, centOff+16*c)
						my := consequence.U64(t, centOff+16*c+8)
						d := (x-mx)*(x-mx) + (y-my)*(y-my)
						if d < bestD {
							best, bestD = c, d
						}
					}
					t.Compute(int64(k * dims * 4))
					cx[best] += x
					cy[best] += y
					cn[best]++
				}
				base := sumsOff + w*4096
				for c := 0; c < k; c++ {
					consequence.PutU64(t, base+24*c, cx[c])
					consequence.PutU64(t, base+24*c+8, cy[c])
					consequence.PutU64(t, base+24*c+16, cn[c])
				}
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
		// Root recomputes centroids from the partial sums.
		for c := 0; c < k; c++ {
			var sx, sy, n uint64
			for w := 0; w < workers; w++ {
				base := sumsOff + w*4096
				sx += consequence.U64(t, base+24*c)
				sy += consequence.U64(t, base+24*c+8)
				n += consequence.U64(t, base+24*c+16)
			}
			if n > 0 {
				consequence.PutU64(t, centOff+16*c, sx/n)
				consequence.PutU64(t, centOff+16*c+8, sy/n)
			}
		}
		t.Compute(int64(k * workers * 8))
	}
}

func centroids(rt *consequence.Runtime) (out [k][2]uint64, err error) {
	err = rt.Run(func(t consequence.T) {
		program(t)
		for c := 0; c < k; c++ {
			out[c][0] = consequence.U64(t, centOff+16*c)
			out[c][1] = consequence.U64(t, centOff+16*c+8)
		}
	})
	return
}

func main() {
	// Modeled effect of thread reuse (simulated time).
	for _, pool := range []bool{true, false} {
		rt, err := consequence.New(
			consequence.WithSegmentSize(1<<20),
			consequence.WithSimulatedTime(),
			consequence.WithThreadPool(pool),
		)
		if err != nil {
			panic(err)
		}
		if _, err := centroids(rt); err != nil {
			panic(err)
		}
		st := rt.Stats()
		fmt.Printf("thread pool %-5v: %2d/%2d spawns reused, modeled runtime %6.2f ms\n",
			pool, st.ThreadsReused, st.ThreadsSpawned, float64(st.WallNS)/1e6)
	}

	// Deterministic clustering on the real host.
	fmt.Println("\nfinal centroids (real host, twice):")
	var prev [k][2]uint64
	for rep := 1; rep <= 2; rep++ {
		rt, err := consequence.New(consequence.WithSegmentSize(1 << 20))
		if err != nil {
			panic(err)
		}
		cents, err := centroids(rt)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  run %d: %v\n", rep, cents)
		if rep == 2 {
			if cents == prev {
				fmt.Println("  identical — deterministic ✓")
			} else {
				fmt.Println("  DIVERGENCE — this is a bug")
			}
		}
		prev = cents
	}
}
