// Raceybank: deliberately racy account updates. Under ordinary
// threading, unsynchronized read-modify-write cycles lose updates
// unpredictably — a different total every run. Under Consequence the
// program is still racy (updates are still lost to last-writer-wins
// merging!) but it loses exactly the same updates every time: determinism
// is guaranteed for all programs, data races included (§2 of the paper).
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	consequence "repro"
)

const (
	tellers  = 4
	deposits = 200
)

// racyBalance runs the racy program under Consequence and returns the
// final balance plus the run's state checksum.
func racyBalance(perturbSeed int64) (uint64, uint64) {
	rt, err := consequence.New(
		consequence.WithSegmentSize(1<<20),
		consequence.WithPerturbation(50*time.Microsecond, perturbSeed),
	)
	if err != nil {
		panic(err)
	}
	var balance uint64
	err = rt.Run(func(t consequence.T) {
		var hs []consequence.Handle
		for i := 0; i < tellers; i++ {
			i := i
			hs = append(hs, t.Spawn(func(t consequence.T) {
				for j := 0; j < deposits; j++ {
					t.Compute(int64(100 * (i + 1)))
					b := consequence.U64(t, 0) // racy read
					consequence.PutU64(t, 0, b+1)
				}
			}))
		}
		for _, h := range hs {
			t.Join(h)
		}
		balance = consequence.U64(t, 0) // deterministic final value
	})
	if err != nil {
		panic(err)
	}
	return balance, rt.Checksum()
}

// goRacy is the same lost-update pattern on raw goroutines: a different
// answer most runs.
func goRacy() uint64 {
	var balance atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < tellers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < deposits; j++ {
				b := balance.Load()
				if rand.Intn(8) == 0 {
					runtime.Gosched() // widen the lost-update window sometimes
				}
				balance.Store(b + 1)
			}
		}()
	}
	wg.Wait()
	return balance.Load()
}

func main() {
	fmt.Printf("racy bank: %d tellers × %d unsynchronized deposits (ideal total %d)\n\n",
		tellers, deposits, tellers*deposits)

	fmt.Println("raw goroutines (nondeterministic lost updates):")
	for i := 0; i < 3; i++ {
		fmt.Printf("  run %d: balance = %d\n", i+1, goRacy())
	}

	fmt.Println("\nconsequence (same race, deterministic outcome):")
	var prevBal, prevSum uint64
	same := true
	for i := 0; i < 3; i++ {
		bal, sum := racyBalance(int64(i * 17)) // different perturbation each run
		fmt.Printf("  run %d: balance = %d, checksum = %016x\n", i+1, bal, sum)
		if i > 0 && (bal != prevBal || sum != prevSum) {
			same = false
		}
		prevBal, prevSum = bal, sum
	}
	if same {
		fmt.Println("  identical every run — the race resolves the same way each time ✓")
	} else {
		fmt.Println("  DIVERGENCE — this is a bug")
	}
}
