// Quickstart: a mutex-protected shared counter incremented by four
// threads, run twice (plus once with aggressive schedule perturbation).
// Every run produces the same final value, the same memory checksum, and
// the same synchronization-order hash — determinism you can diff.
package main

import (
	"fmt"
	"time"

	consequence "repro"
)

const (
	workers    = 4
	increments = 1000
)

func program(t consequence.T) {
	m := t.NewMutex()
	var hs []consequence.Handle
	for i := 0; i < workers; i++ {
		hs = append(hs, t.Spawn(func(t consequence.T) {
			for j := 0; j < increments; j++ {
				t.Compute(200) // local work between critical sections
				t.Lock(m)
				consequence.AddU64(t, 0, 1)
				t.Unlock(m)
			}
		}))
	}
	for _, h := range hs {
		t.Join(h)
	}
}

func runOnce(label string, opts ...consequence.Option) (uint64, uint64) {
	rt, err := consequence.New(append([]consequence.Option{
		consequence.WithSegmentSize(1 << 20),
	}, opts...)...)
	if err != nil {
		panic(err)
	}
	if err := rt.Run(program); err != nil {
		panic(err)
	}
	fmt.Printf("%-28s checksum=%016x syncOrder=%016x\n", label, rt.Checksum(), rt.TraceHash())
	return rt.Checksum(), rt.TraceHash()
}

func main() {
	fmt.Printf("counting to %d with %d threads:\n\n", workers*increments, workers)
	c1, t1 := runOnce("run 1")
	c2, t2 := runOnce("run 2")
	c3, t3 := runOnce("run 3 (perturbed schedule)",
		consequence.WithPerturbation(100*time.Microsecond, 7))
	if c1 == c2 && c2 == c3 && t1 == t2 && t2 == t3 {
		fmt.Println("\nall runs identical — deterministic ✓")
	} else {
		fmt.Println("\nDIVERGENCE — this is a bug")
	}
}
