// Command consequence-bench regenerates the evaluation figures of
// "High-Performance Determinism with Total Store Order Consistency"
// (EuroSys 2015) on the deterministic simulation host.
//
// Usage:
//
//	consequence-bench -fig 10            # one figure
//	consequence-bench -fig all           # figures 10–16
//	consequence-bench -fig 11 -threads 2,4,8,16,32 -scale 2
//
// Any single figure cell (benchmark × runtime × thread count) can also be
// rerun with the observability layer attached, emitting a phase-resolved
// Chrome trace for chrome://tracing / Perfetto:
//
//	consequence-bench -fig none -trace /tmp/cell.json \
//	    -trace-bench ferret -trace-runtime consequence-ic -threads 8
//
// Every table is a deterministic function of the flags: rerunning prints
// byte-identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 10..16, 'all', or 'none'")
	table := flag.String("table", "", "supplementary table: polling | chunklimit | pagesize | lrc | prefetch | shards | all")
	threads := flag.String("threads", "2,4,8,16,32", "comma-separated thread counts for sweeps")
	scale := flag.Int("scale", 1, "problem-size multiplier")
	seed := flag.Int64("seed", 42, "input seed")
	minPages := flag.Int64("fig16-min-pages", 500, "figure 16 qualification cutoff (TSO pages propagated)")
	traceOut := flag.String("trace", "", "write a Chrome trace of one observed cell to this file")
	traceBench := flag.String("trace-bench", "ferret", "benchmark for the observed cell")
	traceRuntime := flag.String("trace-runtime", string(harness.KindConsequenceIC), "runtime for the observed cell (consequence-ic | consequence-rr)")
	listen := flag.String("listen", "", "serve the observed cell's live /metrics (Prometheus text format) and /debug/pprof on this address while the cell runs (e.g. :9090)")
	chaosSpec := flag.String("chaos", "", "arm seeded fault injection on the observed cell: profile[:seed] (see internal/chaos); the cell's checksum must be unchanged")
	shards := flag.Int("shards", 1, "token-arbitration shards for the observed cell; >= 2 enables the scheduler scale-out trio (docs/scheduler.md) — results are unchanged by construction")
	journalPath := flag.String("journal", "", "write the observed cell's divergence journal (internal/journal) to this file; compare two with conseq-diff — the cell's checksum is unchanged by construction")
	commitLogDir := flag.String("commitlog", "", "write the observed cell's persistent commit log (internal/commitlog) into this empty directory; replay with conseq-replay — the cell's checksum is unchanged by construction")
	flag.Parse()

	var ths []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad -threads element %q", part))
		}
		ths = append(ths, n)
	}
	s := harness.Sweep{Threads: ths, Scale: *scale, Seed: *seed}

	figs := []string{"10", "11", "12", "13", "14", "15", "16"}
	switch *fig {
	case "all":
	case "none":
		figs = nil
	default:
		figs = []string{*fig}
	}
	for _, f := range figs {
		var text string
		var err error
		switch f {
		case "10":
			_, text, err = harness.Fig10(s)
		case "11":
			_, text, err = harness.Fig11(s)
		case "12":
			_, text, err = harness.Fig12(s)
		case "13":
			_, text, err = harness.Fig13(s)
		case "14":
			_, text, err = harness.Fig14(s)
		case "15":
			_, text, err = harness.Fig15(s)
		case "16":
			_, text, err = harness.Fig16(s, *minPages)
		default:
			err = fmt.Errorf("unknown figure %q (want 10..16 or all)", f)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println(text)
	}

	// A non-empty -chaos, -journal or -commitlog runs the observed cell even
	// without a trace or listener: the printed checksum is the determinism
	// evidence. Writer close errors (journal and commit log) surface through
	// harness.Run's error, so a torn artifact fails the bench loudly.
	if *traceOut != "" || *listen != "" || *chaosSpec != "" || *journalPath != "" || *commitLogDir != "" {
		o := obs.New()
		if *listen != "" {
			srv, err := o.ListenAndServe(*listen)
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Printf("serving http://%s/metrics (and /debug/pprof) for the observed cell\n", srv.Addr())
		}
		res, err := harness.Run(harness.Options{
			Bench:        *traceBench,
			Runtime:      harness.Kind(*traceRuntime),
			Threads:      ths[0],
			Scale:        *scale,
			Seed:         *seed,
			Shards:       *shards,
			Observer:     o,
			Chaos:        *chaosSpec,
			JournalPath:  *journalPath,
			CommitLogDir: *commitLogDir,
		})
		if err != nil {
			fatal(err)
		}
		if *journalPath != "" {
			fmt.Printf("journal written to %s\n", *journalPath)
		}
		if *commitLogDir != "" {
			fmt.Printf("commit log written to %s\n", *commitLogDir)
		}
		name := fmt.Sprintf("%s %s t=%d scale=%d seed=%d", *traceRuntime, *traceBench, ths[0], *scale, *seed)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			if err := o.WriteChromeTrace(f, name); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("observed cell %s: wall %.3f ms, checksum %016x — trace written to %s\n",
				name, float64(res.WallNS)/1e6, res.Checksum, *traceOut)
		} else {
			fmt.Printf("observed cell %s: wall %.3f ms, checksum %016x\n",
				name, float64(res.WallNS)/1e6, res.Checksum)
		}
	}

	if *table != "" {
		names := []string{"polling", "chunklimit", "pagesize", "lrc", "prefetch", "shards"}
		if *table != "all" {
			names = []string{*table}
		}
		for _, name := range names {
			gen, ok := harness.Tables[name]
			if !ok {
				fatal(fmt.Errorf("unknown table %q", name))
			}
			_, text, err := gen(s)
			if err != nil {
				fatal(err)
			}
			fmt.Println(text)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "consequence-bench:", err)
	os.Exit(1)
}
