// Command conseq-serve runs one benchmark under the Consequence runtime
// with a persistent commit log and serves its committed memory from an
// in-process replica fleet — the read scale-out the log's
// replica-equivalence property pays for (docs/replication.md).
//
// The fleet tails the log live while the benchmark runs; after the run
// it answers a seeded, deterministic sweep of versioned reads whose
// FNV-1a digest summarizes every answered (version, page, content)
// triple. Because reads are served from replicas and replicas cannot
// move the writer, the digest must be byte-identical whatever
// follower-side chaos profile is armed — scripts/check.sh's replica gate
// compares an undisturbed fleet's digest against follower-kill,
// follower-tear and logstall fleets, seed by seed.
//
// Usage:
//
//	conseq-serve -bench histogram -threads 4                # undisturbed fleet
//	conseq-serve -bench histogram -chaos follower-kill:3    # kill/restart storm
//	conseq-serve -bench histogram -followers 4 -max-lag 32  # bigger fleet, tighter bound
//	conseq-serve -bench histogram -dir /tmp/log -keep       # keep the log directory
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/commitlog"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/host/simhost"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "histogram", "benchmark name (see detrun -list)")
	threads := flag.Int("threads", 4, "thread count")
	scale := flag.Int("scale", 1, "problem-size multiplier")
	seed := flag.Int64("seed", 42, "input seed")
	dir := flag.String("dir", "", "commit-log directory (default: a temp dir, removed unless -keep)")
	keep := flag.Bool("keep", false, "keep the commit-log directory after the run")
	followers := flag.Int("followers", 2, "serving followers in the fleet (an archive follower is always added)")
	history := flag.Int64("history", 256, "per-follower undo window in versions (serving followers; the archive keeps everything)")
	maxLag := flag.Int64("max-lag", 64, "staleness bound in versions: followers lagging further drain from latest-read routing")
	fleetSeed := flag.Int64("fleet-seed", 1, "seed for the fleet's backoff jitter and the read sweep")
	chaosSpec := flag.String("chaos", "", "arm seeded follower-side fault injection: profile[:seed], e.g. follower-kill:3 (profiles: "+strings.Join(chaos.Profiles(), ", ")+")")
	sweep := flag.Int("sweep", 256, "versioned reads in the deterministic sweep")
	metrics := flag.Bool("metrics", false, "print the replica metrics snapshot after the run")
	flag.Parse()

	spec, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	p := workload.Params{Threads: *threads, Scale: *scale, Seed: *seed}

	logDir := *dir
	if logDir == "" {
		td, err := os.MkdirTemp("", "conseq-serve-*")
		if err != nil {
			fatal(err)
		}
		if !*keep {
			defer os.RemoveAll(td)
		}
		logDir = td
	}

	in, err := chaos.Parse(*chaosSpec)
	if err != nil {
		fatal(err)
	}

	c := det.Default()
	c.SegmentSize = spec.SegmentSize(p)
	c.Model = costmodel.Default()
	rt, err := det.New(c, simhost.New(costmodel.Default()))
	if err != nil {
		fatal(err)
	}
	cl, err := commitlog.Create(logDir, commitlog.Options{
		Meta: map[string]string{
			"bench":   spec.Name,
			"runtime": rt.Name(),
			"threads": fmt.Sprint(*threads),
			"scale":   fmt.Sprint(*scale),
			"seed":    fmt.Sprint(*seed),
		},
	})
	if err != nil {
		fatal(err)
	}
	if err := rt.SetCommitLog(cl); err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	fl := replica.New(logDir, cl, replica.Options{
		Followers:         *followers,
		HistoryVersions:   *history,
		MaxLag:            *maxLag,
		Archive:           true,
		Seed:              *fleetSeed,
		Chaos:             in,
		Registry:          reg,
		SnapshotOnRestart: true,
	})
	if err := fl.Start(); err != nil {
		fatal(err)
	}

	start := time.Now()
	if err := rt.Run(spec.Prog(p)); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	final := cl.Stats().LastVersion
	if err := fl.WaitCaughtUp(final, 60*time.Second); err != nil {
		fatal(err)
	}

	// Every follower must hold the writer's exact final state.
	wantSum := rt.Checksum()
	for _, f := range fl.Followers() {
		if got := f.Checksum(); got != wantSum {
			fmt.Fprintf(os.Stderr, "conseq-serve: follower %d checksum %016x != runtime %016x\n", f.ID(), got, wantSum)
			os.Exit(1)
		}
	}

	digest, reads, err := sweepDigest(fl, final, *sweep, *fleetSeed)
	if err != nil {
		fatal(err)
	}

	if err := cl.Close(); err != nil {
		fatal(err)
	}
	fl.Close()

	st := fl.Stats()
	cs := cl.Stats()
	fmt.Printf("benchmark   %s (%s, %s)\n", spec.Name, spec.Suite, spec.Class)
	fmt.Printf("runtime     %s, %d threads, scale %d, seed %d\n", rt.Name(), *threads, *scale, *seed)
	if in != nil {
		fmt.Printf("chaos       %s (%d kills, %d tears, %d stalls)\n",
			in, in.Stats().FollowerKills, in.Stats().FollowerTears, in.Stats().FollowerStalls)
	}
	fmt.Printf("checksum    %016x\n", wantSum)
	fmt.Printf("commitlog   %d commits, %d snapshots, %d segments, %d bytes (%d append stalls)\n",
		cs.Commits, cs.Snapshots, cs.Segments, cs.Bytes, cs.AppendStalls)
	fmt.Printf("fleet       %d followers + archive, frontier %d, %d restarts, %d/%d admitted\n",
		st.Followers, st.Frontier, st.Restarts, st.Admitted, st.Followers)
	fmt.Printf("reads       %d swept: %d served, %d redirected, %d rejected\n",
		reads, st.ReadsServed, st.ReadsRedirected, st.ReadsRejected)
	if st.Catchups > 0 {
		fmt.Printf("catchup     %d cycles, last %.3f ms, max %.3f ms\n",
			st.Catchups, float64(st.CatchupNSLast)/1e6, float64(st.CatchupNSMax)/1e6)
	}
	fmt.Printf("host        %.3f ms\n", float64(elapsed.Nanoseconds())/1e6)
	fmt.Printf("sweep digest %016x\n", digest)
	if *metrics {
		fmt.Println("metrics:")
		for _, s := range reg.Snapshot() {
			fmt.Println("  ", s)
		}
	}
}

// sweepDigest reads n seeded (version, page) samples through the fleet's
// routing and hashes every answer. The sample sequence is a pure
// function of (final version, geometry, seed), so two runs of the same
// benchmark produce the same sweep — and replica equivalence demands
// they produce the same digest, chaos or not.
func sweepDigest(fl *replica.Fleet, final int64, n int, seed int64) (uint64, int, error) {
	npages := fl.NumPages()
	h := fnv.New64a()
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0x636f6e736571 // "conseq"
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var rec [16]byte
	for i := 0; i < n; i++ {
		v := int64(next() % uint64(final+1))
		pg := int(next() % uint64(npages))
		b, err := fl.ReadAt(v, pg)
		if err != nil {
			return 0, 0, fmt.Errorf("sweep read (version %d, page %d): %w", v, pg, err)
		}
		for j := 0; j < 8; j++ {
			rec[j] = byte(uint64(v) >> (8 * j))
			rec[8+j] = byte(uint64(pg) >> (8 * j))
		}
		h.Write(rec[:])
		h.Write(b)
	}
	return h.Sum64(), n, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conseq-serve:", err)
	os.Exit(1)
}
