// Command conseq-analyze attributes where a Consequence run spends its
// time: the serialization critical path, per-lock token-wait attribution,
// commit/merge overlap, and a chunk-coarsening what-if estimate (see
// internal/obs/analyze and docs/observability.md).
//
// It analyzes either a previously exported Chrome trace or a live run of a
// named workload on the deterministic simulation host:
//
//	conseq-analyze -input /tmp/ferret.json
//	conseq-analyze -bench ferret -runtime consequence-ic -threads 8
//	conseq-analyze -bench canneal -threads 16 -json > report.json
//
// Both paths produce the identical report for the same run: the analyzer
// normalizes live lanes and parsed traces into the same input. Reports on
// the simulation host are deterministic — rerunning prints byte-identical
// output. If the timeline dropped events (ring overflow), the report is
// marked partial and a warning is printed to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/det"
	"repro/internal/harness"
	"repro/internal/obs/analyze"
)

func main() {
	input := flag.String("input", "", "analyze this Chrome-trace JSON file instead of running a workload")
	bench := flag.String("bench", "ferret", "benchmark to run live (see detrun -list)")
	rtName := flag.String("runtime", string(harness.KindConsequenceIC), "runtime for the live run (consequence-ic | consequence-rr)")
	threads := flag.Int("threads", 8, "thread count for the live run")
	scale := flag.Int("scale", 1, "problem-size multiplier for the live run")
	seed := flag.Int64("seed", 42, "input seed for the live run")
	predict := flag.Bool("predict", true, "enable write-set prediction (page prefetch during token wait) for the live run")
	shards := flag.Int("shards", 1, "token-arbitration shards for the live run; >= 2 enables the scheduler scale-out trio (docs/scheduler.md)")
	jsonOut := flag.Bool("json", false, "emit the stable JSON report instead of text")
	flag.Parse()

	var (
		rep *analyze.Report
		err error
	)
	if *input != "" {
		rep, err = analyzeFile(*input)
	} else {
		_, _, rep, err = harness.AnalyzeCell(harness.Options{
			Bench:   *bench,
			Runtime: harness.Kind(*rtName),
			Threads: *threads,
			Scale:   *scale,
			Seed:    *seed,
			Shards:  *shards,
			Modify:  func(c *det.Config) { c.WriteSetPrediction = *predict },
		})
	}
	if err != nil {
		fatal(err)
	}
	if rep.Partial {
		fmt.Fprintf(os.Stderr, "conseq-analyze: warning: %d timeline events were dropped; the report is partial (raise obs.WithLaneCap)\n", rep.DroppedEvents)
	}
	if *jsonOut {
		b, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(b)
		return
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
}

// analyzeFile parses and analyzes an exported Chrome trace.
func analyzeFile(path string) (*analyze.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	in, err := analyze.ParseChromeTrace(f)
	if err != nil {
		return nil, err
	}
	return analyze.Analyze(in)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conseq-analyze:", err)
	os.Exit(1)
}
