// Command detrun runs one benchmark program under a chosen runtime and
// reports its final-memory checksum, sync-order trace hash, and run
// statistics. With -verify it executes the program repeatedly (and, for
// the Consequence runtimes, also on a schedule-perturbed real host) and
// checks that every run agrees — a direct demonstration of the
// determinism guarantee.
//
// Usage:
//
//	detrun -bench ferret -runtime consequence-ic -threads 8
//	detrun -bench canneal -runtime dthreads -verify
//	detrun -bench histogram -runtime pthreads       # nondeterministic ref
//	detrun -bench ferret -trace /tmp/ferret.json    # Chrome/Perfetto trace
//	detrun -bench ferret -metrics                   # metrics snapshot
//	detrun -bench ferret -journal /tmp/a.csqj       # divergence journal (conseq-diff)
//	detrun -bench ferret -commitlog /tmp/alog       # persistent commit log (conseq-replay)
//	detrun -bench ferret -analyze                   # critical-path report
//	detrun -bench ferret -real -listen :9090        # live /metrics + pprof
//	detrun -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/baseline/dthreads"
	"repro/internal/baseline/dwc"
	"repro/internal/baseline/pth"
	"repro/internal/baseline/rfdet"
	"repro/internal/chaos"
	"repro/internal/clock"
	"repro/internal/commitlog"
	"repro/internal/costmodel"
	"repro/internal/det"
	"repro/internal/harness"
	"repro/internal/host"
	"repro/internal/host/realhost"
	"repro/internal/host/simhost"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/trace"
	"repro/internal/workload"
)

// predictFlag gates write-set prediction on the consequence runtimes. A
// package-level flag so mkRuntime sees it from the direct, -verify and
// -compare paths alike. Results are identical either way (prediction is
// an overlap optimization); the flag exists so the determinism gate can
// assert exactly that, and so timings can be compared on/off.
var predictFlag = flag.Bool("predict", true, "enable write-set prediction (page prefetch during token wait) on the consequence runtimes")

// chaosFlag arms seeded fault injection on the consequence runtimes. A
// package-level flag so mkRuntime sees it from the direct, -verify and
// -compare paths alike; each mkRuntime call builds a fresh injector from
// the spec, so every run of a (profile, seed) pair replays identically.
// Results are identical with chaos on or off (perturbations are confined
// to modeled time and advisory predictions); the chaos determinism gate
// in scripts/check.sh asserts exactly that.
var chaosFlag = flag.String("chaos", "", "arm seeded fault injection on the consequence runtimes: profile[:seed], e.g. storm:7 (profiles: "+strings.Join(chaos.Profiles(), ", ")+")")

// shardsFlag selects sharded token arbitration on the consequence
// runtimes. 1 (the default) is the legacy single-token time model; N >= 2
// partitions lock objects into N shards with real per-shard granting
// authority (docs/scheduler.md stage 2) and also enables the rest of the
// scale-out trio — the deterministic worker pool (pre-spawned to the
// benchmark thread count) and lazy fast-forward — since all three target
// the same token-handoff critical path. Checksums are identical at every
// shard count, and each count's sync-order hash is itself a deterministic
// constant (per-shard grant loops legitimately interleave threads
// differently at different counts, so the hash is pinned per count, not
// across counts); the shard determinism gate in scripts/check.sh asserts
// exactly that against its per-count golden set.
var shardsFlag = flag.Int("shards", 1, "token arbitration shards on the consequence runtimes (>=2 also enables the worker pool and lazy fast-forward)")

// benchThreads mirrors -threads for mkRuntime (the worker-pool prespawn
// depth), set once after flag parsing.
var benchThreads int

func main() {
	bench := flag.String("bench", "histogram", "benchmark name (see -list)")
	rtName := flag.String("runtime", "consequence-ic", "consequence-ic | consequence-rr | dthreads | dwc | pthreads | rfdet-lrc")
	threads := flag.Int("threads", 4, "thread count")
	scale := flag.Int("scale", 1, "problem-size multiplier")
	seed := flag.Int64("seed", 42, "input seed")
	verify := flag.Bool("verify", false, "run repeatedly (sim + perturbed real host) and check determinism")
	compare := flag.Bool("compare", false, "run the benchmark on every runtime and tabulate")
	useReal := flag.Bool("real", false, "run on the real (goroutine) host instead of the simulator")
	traceOut := flag.String("trace", "", "write a phase-resolved Chrome trace (chrome://tracing / Perfetto JSON) to this file")
	metrics := flag.Bool("metrics", false, "print the observability metrics snapshot after the run")
	analyzeRun := flag.Bool("analyze", false, "print the critical-path analysis report after the run (see conseq-analyze)")
	listen := flag.String("listen", "", "serve live /metrics (Prometheus text format) and /debug/pprof on this address during the run (e.g. :9090)")
	sample := flag.Duration("sample", 0, "snapshot the metrics registry at this interval and print per-interval deltas after the run (e.g. 100ms)")
	dumpTrace := flag.Int("dump-sync", 0, "dump the first N sync-order events")
	watchdog := flag.Duration("watchdog", 0, "real-host stall watchdog: if any thread stays blocked longer than this, dump per-thread diagnostics and exit non-zero (requires -real)")
	timeout := flag.Duration("timeout", 0, "bound the run's host wall clock: on expiry dump goroutine stacks and runtime state and exit non-zero (e.g. 30s)")
	journalPath := flag.String("journal", "", "write the run's divergence journal (sync events, hash checkpoints, commit page hashes) to this file; compare two with conseq-diff")
	commitLogDir := flag.String("commitlog", "", "write the run's persistent commit log (committed page diffs, segmented) into this empty directory; replay with conseq-replay")
	list := flag.Bool("list", false, "list benchmarks and exit")
	listChaos := flag.Bool("list-chaos", false, "list built-in chaos profiles and exit")
	flag.Parse()
	benchThreads = *threads

	if *timeout > 0 {
		defer armTimeout(*timeout).Stop()
	}

	if *list {
		for _, s := range workload.All() {
			fmt.Printf("%-18s %-8s %s\n", s.Name, s.Suite, s.Class)
		}
		return
	}
	if *listChaos {
		for _, name := range chaos.Profiles() {
			fmt.Println(name)
		}
		return
	}

	spec, err := workload.ByName(*bench)
	if err != nil {
		fatal(err)
	}
	p := workload.Params{Threads: *threads, Scale: *scale, Seed: *seed}

	if *verify {
		if *journalPath != "" {
			fatal(fmt.Errorf("-journal records a single run; use it without -verify (journal two runs and conseq-diff them instead)"))
		}
		if *commitLogDir != "" {
			fatal(fmt.Errorf("-commitlog records a single run; use it without -verify"))
		}
		runVerify(spec, p, *rtName)
		return
	}
	if *compare {
		if *journalPath != "" {
			fatal(fmt.Errorf("-journal records a single run; use it without -compare"))
		}
		if *commitLogDir != "" {
			fatal(fmt.Errorf("-commitlog records a single run; use it without -compare"))
		}
		runCompare(spec, p)
		return
	}

	h := mkHost(*useReal, 0)
	if *watchdog > 0 {
		rh, ok := h.(*realhost.Host)
		if !ok {
			fatal(fmt.Errorf("-watchdog requires -real (the simulation host proves deadlocks itself)"))
		}
		rh.SetWatchdog(*watchdog, onStall)
	}
	rt, err := mkRuntime(*rtName, spec.SegmentSize(p), h)
	if err != nil {
		fatal(err)
	}
	var jw *journal.Writer
	if *journalPath != "" {
		type journalable interface{ SetJournal(*journal.Writer) }
		jr, ok := rt.(journalable)
		if !ok {
			fatal(fmt.Errorf("runtime %q does not support journaling (the consequence runtimes do)", *rtName))
		}
		jw, err = journal.Create(*journalPath, map[string]string{
			"bench":   spec.Name,
			"runtime": *rtName,
			"threads": fmt.Sprint(*threads),
			"scale":   fmt.Sprint(*scale),
			"seed":    fmt.Sprint(*seed),
			"shards":  fmt.Sprint(*shardsFlag),
			// Grant mode matters when diffing journals: per-shard granting
			// orders events differently from a same-count stage-1 run.
			"shard-grants": fmt.Sprint(*shardsFlag >= 2),
		})
		if err != nil {
			fatal(err)
		}
		jr.SetJournal(jw)
	}
	var cl *commitlog.Log
	if *commitLogDir != "" {
		type loggable interface {
			SetCommitLog(*commitlog.Log) error
		}
		lr, ok := rt.(loggable)
		if !ok {
			fatal(fmt.Errorf("runtime %q does not support commit logging (the consequence runtimes do)", *rtName))
		}
		cl, err = commitlog.Create(*commitLogDir, commitlog.Options{
			Meta: map[string]string{
				"bench":        spec.Name,
				"runtime":      *rtName,
				"threads":      fmt.Sprint(*threads),
				"scale":        fmt.Sprint(*scale),
				"seed":         fmt.Sprint(*seed),
				"shards":       fmt.Sprint(*shardsFlag),
				"shard-grants": fmt.Sprint(*shardsFlag >= 2),
			},
		})
		if err != nil {
			fatal(err)
		}
		if err := lr.SetCommitLog(cl); err != nil {
			fatal(err)
		}
	}
	var observer *obs.Observer
	if *traceOut != "" || *metrics || *analyzeRun || *listen != "" || *sample > 0 {
		observer = attachObserver(rt)
		if observer == nil {
			fatal(fmt.Errorf("runtime %q does not support observability (consequence and dwc runtimes do)", *rtName))
		}
	}
	if *listen != "" {
		srv, err := observer.ListenAndServe(*listen)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("serving      http://%s/metrics (and /debug/pprof)\n", srv.Addr())
	}
	var sampler *obs.Sampler
	if *sample > 0 {
		sampler = obs.NewSampler(observer.Registry(), *sample)
	}
	start := time.Now()
	if err := rt.Run(spec.Prog(p)); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	if jw != nil {
		if err := jw.Close(); err != nil {
			fatal(err)
		}
	}
	if cl != nil {
		if err := cl.Close(); err != nil {
			fatal(err)
		}
	}
	st := rt.Stats()
	fmt.Printf("benchmark   %s (%s, %s)\n", spec.Name, spec.Suite, spec.Class)
	fmt.Printf("runtime     %s, %d threads, scale %d, seed %d\n", rt.Name(), *threads, *scale, *seed)
	if in, err := chaos.Parse(*chaosFlag); err == nil && in != nil {
		fmt.Printf("chaos       %s\n", in)
	}
	fmt.Printf("checksum    %016x\n", rt.Checksum())
	if tr := traceOf(rt); tr != nil {
		fmt.Printf("trace       %d events, hash %016x\n", tr.Len(), tr.Hash())
	}
	if h.Timed() {
		fmt.Printf("virtual     %.3f ms\n", float64(st.WallNS)/1e6)
	}
	fmt.Printf("host        %.3f ms\n", float64(elapsed.Nanoseconds())/1e6)
	fmt.Printf("sync ops    %d (%d coarsened), token grants %d\n", st.SyncOps, st.CoarsenedOps, st.TokenGrants)
	fmt.Printf("memory      %d versions, %d pages committed (%d merged), %d pulled, %d faults, peak %d pages\n",
		st.Versions, st.CommittedPages, st.MergedPages, st.PulledPages, st.Faults, st.PeakPages)
	if jw != nil {
		js := jw.Stats()
		fmt.Printf("journal     %s: %d events, %d commits, %d checkpoints, %d bytes (%d flush stalls)\n",
			*journalPath, js.Events, js.Commits, js.Checkpoints, js.Bytes, js.FlushStalls)
	}
	if cl != nil {
		cs := cl.Stats()
		fmt.Printf("commitlog   %s: %d commits, %d snapshots, %d segments (%d rolls, %d truncated), %d bytes (%d append stalls)\n",
			*commitLogDir, cs.Commits, cs.Snapshots, cs.Segments, cs.Rolls, cs.Truncated, cs.Bytes, cs.AppendStalls)
	}
	if tr := traceOf(rt); tr != nil && *dumpTrace > 0 {
		evs := tr.Events()
		if len(evs) > *dumpTrace {
			evs = evs[:*dumpTrace]
		}
		for _, e := range evs {
			fmt.Println("  ", e)
		}
	}
	if *traceOut != "" {
		name := fmt.Sprintf("%s %s t=%d scale=%d seed=%d", rt.Name(), spec.Name, *threads, *scale, *seed)
		if err := writeTraceFile(*traceOut, observer, name); err != nil {
			fatal(err)
		}
		fmt.Printf("trace json  %s (%d threads observed)\n", *traceOut, len(observer.Lanes()))
	}
	if *metrics {
		fmt.Println("metrics:")
		for _, s := range observer.Registry().Snapshot() {
			fmt.Println("  ", s)
		}
	}
	if sampler != nil {
		sampler.Stop()
		printSamplePoints(sampler.Points())
	}
	if *analyzeRun {
		name := fmt.Sprintf("%s %s t=%d scale=%d seed=%d", rt.Name(), spec.Name, *threads, *scale, *seed)
		rep, err := analyze.Analyze(analyze.FromObserver(observer, name))
		if err != nil {
			fatal(err)
		}
		if rep.Partial {
			fmt.Fprintf(os.Stderr, "detrun: warning: %d timeline events dropped; analysis is partial\n", rep.DroppedEvents)
		}
		fmt.Println()
		rep.WriteText(os.Stdout)
	}
}

// printSamplePoints renders the sampler's per-interval deltas, skipping
// metrics that did not move in an interval.
func printSamplePoints(pts []obs.SamplePoint) {
	fmt.Printf("samples     %d points\n", len(pts))
	for _, pt := range pts {
		keys := make([]string, 0, len(pt.Deltas))
		for k, d := range pt.Deltas {
			if d != 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		fmt.Printf("  +%-10s", pt.Elapsed.Round(time.Millisecond))
		for _, k := range keys {
			fmt.Printf(" %s=%+d", k, pt.Deltas[k])
		}
		fmt.Println()
	}
}

// attachObserver attaches a fresh observer to runtimes that support one
// (the det-based runtimes: consequence-ic/rr and dwc). Returns nil
// otherwise.
func attachObserver(rt api.Runtime) *obs.Observer {
	type observable interface{ SetObserver(*obs.Observer) }
	or, ok := rt.(observable)
	if !ok {
		return nil
	}
	o := obs.New()
	or.SetObserver(o)
	return o
}

// writeTraceFile exports the observer's timeline as Chrome trace JSON.
func writeTraceFile(path string, o *obs.Observer, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.WriteChromeTrace(f, name); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runVerify demonstrates determinism: repeated sim runs and (for det
// runtimes) perturbed real-host runs must agree bit-for-bit.
func runVerify(spec workload.Spec, p workload.Params, rtName string) {
	type obs struct {
		label string
		sum   uint64
		thash uint64
	}
	var all []obs
	run := func(label string, h host.Host) {
		rt, err := mkRuntime(rtName, spec.SegmentSize(p), h)
		if err != nil {
			fatal(err)
		}
		if err := rt.Run(spec.Prog(p)); err != nil {
			fatal(err)
		}
		o := obs{label: label, sum: rt.Checksum()}
		if tr := traceOf(rt); tr != nil {
			o.thash = tr.Hash()
		}
		all = append(all, o)
		fmt.Printf("  %-22s checksum=%016x trace=%016x\n", label, o.sum, o.thash)
	}
	fmt.Printf("verifying %s on %s (%d threads):\n", spec.Name, rtName, p.Threads)
	run("sim #1", simhost.New(costmodel.Default()))
	run("sim #2", simhost.New(costmodel.Default()))
	if rtName != string(harness.KindPthreads) {
		run("real perturbed #1", realhost.New(200*time.Microsecond, 1))
		run("real perturbed #2", realhost.New(200*time.Microsecond, 99))
	}
	base := all[0]
	ok := true
	for _, o := range all[1:] {
		if o.sum != base.sum || o.thash != base.thash {
			ok = false
			fmt.Printf("MISMATCH: %s differs from %s\n", o.label, base.label)
		}
	}
	if ok {
		fmt.Println("deterministic: all runs agree")
		return
	}
	if rtName == string(harness.KindPthreads) {
		fmt.Println("(expected: pthreads is the nondeterministic baseline)")
		return
	}
	os.Exit(1)
}

// runCompare tabulates one benchmark across all runtimes on the
// simulation host.
func runCompare(spec workload.Spec, p workload.Params) {
	fmt.Printf("%s (%s), %d threads, scale %d — simulated runtimes:\n\n",
		spec.Name, spec.Suite, p.Threads, p.Scale)
	fmt.Printf("%-16s %10s %10s %10s %12s %10s\n", "runtime", "wall(ms)", "syncOps", "grants", "pagesCommit", "peakPages")
	var pthWall int64
	for _, name := range []string{"pthreads", "consequence-ic", "consequence-rr", "dwc", "dthreads", "rfdet-lrc"} {
		rt, err := mkRuntime(name, spec.SegmentSize(p), simhost.New(costmodel.Default()))
		if err != nil {
			fatal(err)
		}
		if err := rt.Run(spec.Prog(p)); err != nil {
			fatal(err)
		}
		st := rt.Stats()
		norm := ""
		if name == "pthreads" {
			pthWall = st.WallNS
		} else if pthWall > 0 {
			norm = fmt.Sprintf("  (%.2fx)", float64(st.WallNS)/float64(pthWall))
		}
		fmt.Printf("%-16s %10.2f %10d %10d %12d %10d%s\n",
			name, float64(st.WallNS)/1e6, st.SyncOps, st.TokenGrants, st.CommittedPages, st.PeakPages, norm)
	}
}

func mkHost(real bool, perturb time.Duration) host.Host {
	if real {
		return realhost.New(perturb, 0)
	}
	return simhost.New(costmodel.Default())
}

func mkRuntime(name string, segSize int, h host.Host) (api.Runtime, error) {
	m := costmodel.Default()
	if *chaosFlag != "" && name != "consequence-ic" && name != "consequence-rr" {
		return nil, fmt.Errorf("-chaos requires a consequence runtime (got %q)", name)
	}
	switch name {
	case "consequence-ic", "consequence-rr":
		c := det.Default()
		if name == "consequence-rr" {
			c.Policy = clock.PolicyRR
		}
		c.WriteSetPrediction = *predictFlag
		c.SegmentSize = segSize
		c.Model = m
		c.EnableScaleOut(*shardsFlag, benchThreads)
		// A fresh injector per runtime: streams carry per-thread sequence
		// state, so sharing one across runs would decorrelate replays.
		in, err := chaos.Parse(*chaosFlag)
		if err != nil {
			return nil, err
		}
		c.Chaos = in
		rt, err := det.New(c, h)
		if err != nil {
			return nil, err
		}
		lastRuntime.Store(rt)
		return rt, nil
	case "dthreads":
		return dthreads.New(dthreads.Config{SegmentSize: segSize, Model: m}, h)
	case "dwc":
		return dwc.New(dwc.Config{SegmentSize: segSize, Model: m}, h)
	case "pthreads":
		return pth.New(pth.Config{SegmentSize: segSize, Model: m}, h)
	case "rfdet-lrc":
		return rfdet.New(rfdet.Config{SegmentSize: segSize, Model: m}, h)
	}
	return nil, fmt.Errorf("unknown runtime %q", name)
}

// traceOf extracts the trace recorder from runtimes that keep one.
func traceOf(rt api.Runtime) *trace.Recorder {
	type tracer interface{ Trace() *trace.Recorder }
	if t, ok := rt.(tracer); ok {
		return t.Trace()
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "detrun:", err)
	os.Exit(1)
}
