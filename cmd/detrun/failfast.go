package main

import (
	"fmt"
	"os"
	goruntime "runtime"
	"sync/atomic"
	"time"
)

// lastRuntime holds the most recently created runtime (stored by
// mkRuntime), so failure dumps triggered from timers and watchdog
// handlers can include its diagnostic state regardless of which code
// path (direct, -verify, -compare) built it.
var lastRuntime atomic.Value

// dumper is implemented by runtimes that can render a diagnostic state
// snapshot (the consequence runtimes' Runtime.DumpState: per-thread
// phase, clock and held locks, plus the arbiter's token state).
type dumper interface{ DumpState() string }

// dumpDiagnostics writes the failure bundle to stderr: the triggering
// report, the runtime's deterministic state snapshot when available, and
// every goroutine stack — everything needed to see what each thread was
// waiting on instead of an opaque hang.
func dumpDiagnostics(reason string) {
	fmt.Fprintln(os.Stderr, "detrun:", reason)
	if d, ok := lastRuntime.Load().(dumper); ok {
		fmt.Fprintln(os.Stderr, d.DumpState())
	}
	buf := make([]byte, 1<<20)
	n := goruntime.Stack(buf, true)
	fmt.Fprintf(os.Stderr, "goroutine stacks:\n%s\n", buf[:n])
}

// armTimeout bounds the process's real wall clock: if the run has not
// completed within d, dump diagnostics and exit non-zero instead of
// hanging forever. Applies on both hosts (a simulated deadlock is caught
// by the sim host itself; the timeout catches livelock and real-host
// stalls the watchdog is not armed for).
func armTimeout(d time.Duration) *time.Timer {
	return time.AfterFunc(d, func() {
		dumpDiagnostics(fmt.Sprintf("timeout: run did not complete within %s", d))
		os.Exit(2)
	})
}

// onStall is the real-host watchdog handler: report what every blocked
// thread was waiting on, dump runtime state and stacks, and fail.
func onStall(report string) {
	dumpDiagnostics(report)
	os.Exit(2)
}
