// Command conseq-replay reconstructs program memory from a persistent
// commit log (internal/commitlog, written by `detrun -commitlog` or
// `consequence-bench -commitlog`). The log records every committed
// version's page diffs in sync order, so the replica is an exact copy of
// the live run's committed state at any version — time travel — and the
// reconstruction is verifiable: against the log's own end trailer,
// against an expected checksum, or commit-by-commit against the run's
// divergence journal.
//
// Usage:
//
//	conseq-replay -dir /tmp/alog                      # replay all, print final state
//	conseq-replay -dir /tmp/alog -at 120              # time travel to version 120
//	conseq-replay -dir /tmp/alog -at-seq 500          # state as of sync-order seq 500
//	conseq-replay -dir /tmp/alog -resume              # newest snapshot + tail (restart path)
//	conseq-replay -dir /tmp/alog -checksum 9c02…      # assert the final checksum
//	conseq-replay -dir /tmp/alog -verify a.csqj       # cross-check against the run journal
//	conseq-replay -dir /tmp/alog -follow              # tail a live run's commits
//	conseq-replay -dir /tmp/alog -repair              # crash recovery: keep the longest valid prefix
//
// Exit status: 0 on success, 1 on verification failure or corrupt log,
// 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/commitlog"
	"repro/internal/journal"
)

func main() {
	dir := flag.String("dir", "", "commit log directory (required)")
	at := flag.Int64("at", -1, "replay to this version (default: the whole retained history)")
	atSeq := flag.Int64("at-seq", -1, "replay to this sync-order seq (commits with AtSeq <= seq)")
	resume := flag.Bool("resume", false, "reconstruct from the newest snapshot plus the log tail (the restart path) instead of the full history")
	sum := flag.String("checksum", "", "expected final checksum (16 hex digits, as printed by detrun); exit 1 on mismatch")
	verifyPath := flag.String("verify", "", "cross-check the replay against this run journal (.csqj): same commit sequence, and every replayed page must hash to the journal's recorded page hash")
	follow := flag.Bool("follow", false, "tail the log as it is written: print each commit until the end trailer appears")
	followPoll := flag.Duration("follow-poll", 200*time.Millisecond, "poll interval for -follow")
	repair := flag.Bool("repair", false, "scan for a torn tail after a crash and truncate to the longest valid record prefix, then replay what survives")
	quiet := flag.Bool("quiet", false, "suppress per-commit output (-verify, -follow)")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "conseq-replay: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	modes := 0
	for _, on := range []bool{*atSeq >= 0, *resume, *verifyPath != "", *follow} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fatalUsage(fmt.Errorf("-at-seq, -resume, -verify and -follow are mutually exclusive"))
	}

	var want uint64
	haveWant := false
	if *sum != "" {
		v, err := strconv.ParseUint(*sum, 16, 64)
		if err != nil {
			fatalUsage(fmt.Errorf("bad -checksum %q: %v", *sum, err))
		}
		want, haveWant = v, true
	}

	if *repair {
		rep, err := commitlog.Repair(*dir)
		if err != nil {
			fatal(err)
		}
		if rep.Repaired {
			fmt.Printf("repaired    truncated %d bytes, dropped %d segments, rebuilt %d indexes\n",
				rep.TruncatedBytes, rep.DroppedSegments, rep.RewroteIndexes)
		} else {
			fmt.Println("repaired    log was already clean")
		}
		fmt.Printf("surviving   %d segments, %d records\n", rep.Segments, rep.Records)
	}

	var st *commitlog.State
	var err error
	switch {
	case *follow:
		st, err = followLog(*dir, *followPoll, *quiet)
	case *verifyPath != "":
		st, err = verifyAgainstJournal(*dir, *verifyPath, *quiet)
	case *resume:
		st, err = commitlog.Resume(*dir)
	case *atSeq >= 0:
		st, err = commitlog.ReplayToSeq(*dir, *atSeq)
	default:
		st, err = commitlog.Replay(*dir, *at)
	}
	if err != nil {
		fatal(err)
	}

	if bench, ok := st.Meta()["bench"]; ok {
		fmt.Printf("run         %s (runtime %s, %s threads, scale %s, seed %s)\n",
			bench, st.Meta()["runtime"], st.Meta()["threads"], st.Meta()["scale"], st.Meta()["seed"])
	}
	fmt.Printf("replica     version %d (seq %d), %d commits applied, %d pages x %d bytes\n",
		st.Version, st.AtSeq, st.Commits, st.NumPages(), st.PageSize())
	if st.SawEnd {
		fmt.Println("trailer     end trailer present, checksum verified against the replica")
	}
	fmt.Printf("checksum    %016x\n", st.Checksum())
	if haveWant {
		if st.Checksum() != want {
			fmt.Fprintf(os.Stderr, "conseq-replay: checksum mismatch: replica %016x, expected %016x\n", st.Checksum(), want)
			os.Exit(1)
		}
		fmt.Println("expected    checksum matches")
	}
}

// verifyAgainstJournal replays the full log with a per-commit cross-check
// against the run journal: both artifacts record each commit at the same
// sync-order position, so the sequences must agree coordinate for
// coordinate, and the replica's page content must hash to the journal's
// recorded page hashes.
func verifyAgainstJournal(dir, jpath string, quiet bool) (*commitlog.State, error) {
	jd, err := journal.Load(jpath)
	if err != nil {
		return nil, err
	}
	i := 0
	st, err := commitlog.ReplayWith(dir, -1, func(st *commitlog.State, lc commitlog.Commit) error {
		if i >= len(jd.Commits) {
			return fmt.Errorf("verify: log has more commits than the journal (%d)", len(jd.Commits))
		}
		jc := jd.Commits[i]
		i++
		if lc.AtSeq != jc.AtSeq || lc.Version != jc.Version || lc.Tid != jc.Tid || lc.Clock != jc.Clock {
			return fmt.Errorf("verify: commit %d: log (seq %d v%d tid %d clock %d) != journal (seq %d v%d tid %d clock %d)",
				i-1, lc.AtSeq, lc.Version, lc.Tid, lc.Clock, jc.AtSeq, jc.Version, jc.Tid, jc.Clock)
		}
		if len(lc.Pages) != len(jc.Pages) {
			return fmt.Errorf("verify: commit %d (v%d): %d logged pages, journal has %d",
				i-1, lc.Version, len(lc.Pages), len(jc.Pages))
		}
		for k, pd := range lc.Pages {
			if pd.Page != jc.Pages[k].Page {
				return fmt.Errorf("verify: commit %d (v%d): page set diverges (%d vs %d)",
					i-1, lc.Version, pd.Page, jc.Pages[k].Page)
			}
			if got := st.PageHash(pd.Page); got != jc.Pages[k].Hash {
				return fmt.Errorf("verify: commit %d (v%d) page %d: replayed content hashes to %016x, journal recorded %016x",
					i-1, lc.Version, pd.Page, got, jc.Pages[k].Hash)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if i != len(jd.Commits) {
		return nil, fmt.Errorf("verify: log has %d commits, journal has %d", i, len(jd.Commits))
	}
	if !quiet {
		fmt.Printf("verified    %d commits against %s: sequence, page sets and content hashes all agree\n", i, jpath)
	}
	return st, nil
}

// followLog tails a growing log directory: repeatedly reads whatever
// complete records are durable (tolerant of a mid-write tail), prints
// commits past the last seen version, and returns once the end trailer
// appears. This is the out-of-process follower; in-process consumers use
// commitlog.Log.Stream.
func followLog(dir string, poll time.Duration, quiet bool) (*commitlog.State, error) {
	last := int64(-1)
	for {
		r, err := commitlog.OpenReader(dir)
		if err != nil {
			// The writer may not have created the first segment yet.
			time.Sleep(poll)
			continue
		}
		done := false
		_, err = r.ForEachAvailable(func(_ int64, rc commitlog.Record) error {
			switch rc.Kind {
			case commitlog.KindCommit:
				if rc.Commit.Version > last {
					last = rc.Commit.Version
					if !quiet {
						fmt.Printf("commit      v%d seq %d tid %d clock %d: %d pages\n",
							rc.Commit.Version, rc.Commit.AtSeq, rc.Commit.Tid, rc.Commit.Clock, len(rc.Commit.Pages))
					}
				}
			case commitlog.KindEnd:
				done = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if done {
			return commitlog.Replay(dir, -1)
		}
		time.Sleep(poll)
	}
}

func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "conseq-replay:", err)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conseq-replay:", err)
	os.Exit(1)
}
