// Command conseq-replay reconstructs program memory from a persistent
// commit log (internal/commitlog, written by `detrun -commitlog` or
// `consequence-bench -commitlog`). The log records every committed
// version's page diffs in sync order, so the replica is an exact copy of
// the live run's committed state at any version — time travel — and the
// reconstruction is verifiable: against the log's own end trailer,
// against an expected checksum, or commit-by-commit against the run's
// divergence journal.
//
// Usage:
//
//	conseq-replay -dir /tmp/alog                      # replay all, print final state
//	conseq-replay -dir /tmp/alog -at 120              # time travel to version 120
//	conseq-replay -dir /tmp/alog -at-seq 500          # state as of sync-order seq 500
//	conseq-replay -dir /tmp/alog -resume              # newest snapshot + tail (restart path)
//	conseq-replay -dir /tmp/alog -checksum 9c02…      # assert the final checksum
//	conseq-replay -dir /tmp/alog -verify a.csqj       # cross-check against the run journal
//	conseq-replay -dir /tmp/alog -follow              # tail a live run's commits
//	conseq-replay -dir /tmp/alog -follow -max-lag 64  # tail with a liveness bound
//	conseq-replay -dir /tmp/alog -repair              # crash recovery: keep the longest valid prefix
//
// Exit status: 0 on success, 1 on verification failure or corrupt log,
// 2 on usage errors or a -max-lag breach.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/commitlog"
	"repro/internal/journal"
	"repro/internal/replica"
)

func main() {
	dir := flag.String("dir", "", "commit log directory (required)")
	at := flag.Int64("at", -1, "replay to this version (default: the whole retained history)")
	atSeq := flag.Int64("at-seq", -1, "replay to this sync-order seq (commits with AtSeq <= seq)")
	resume := flag.Bool("resume", false, "reconstruct from the newest snapshot plus the log tail (the restart path) instead of the full history")
	sum := flag.String("checksum", "", "expected final checksum (16 hex digits, as printed by detrun); exit 1 on mismatch")
	verifyPath := flag.String("verify", "", "cross-check the replay against this run journal (.csqj): same commit sequence, and every replayed page must hash to the journal's recorded page hash")
	follow := flag.Bool("follow", false, "tail the log as it is written: print each commit until the end trailer appears")
	followPoll := flag.Duration("follow-poll", 200*time.Millisecond, "poll interval for -follow")
	maxLag := flag.Int64("max-lag", -1, "with -follow: exit 2 if the follower falls more than this many versions behind the durable frontier (-1 disables)")
	repair := flag.Bool("repair", false, "scan for a torn tail after a crash and truncate to the longest valid record prefix, then replay what survives")
	quiet := flag.Bool("quiet", false, "suppress per-commit output (-verify, -follow)")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "conseq-replay: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	modes := 0
	for _, on := range []bool{*atSeq >= 0, *resume, *verifyPath != "", *follow} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fatalUsage(fmt.Errorf("-at-seq, -resume, -verify and -follow are mutually exclusive"))
	}
	if *maxLag >= 0 && !*follow {
		fatalUsage(fmt.Errorf("-max-lag requires -follow"))
	}

	var want uint64
	haveWant := false
	if *sum != "" {
		v, err := strconv.ParseUint(*sum, 16, 64)
		if err != nil {
			fatalUsage(fmt.Errorf("bad -checksum %q: %v", *sum, err))
		}
		want, haveWant = v, true
	}

	if *repair {
		rep, err := commitlog.Repair(*dir)
		if err != nil {
			fatal(err)
		}
		if rep.Repaired {
			fmt.Printf("repaired    truncated %d bytes, dropped %d segments, rebuilt %d indexes\n",
				rep.TruncatedBytes, rep.DroppedSegments, rep.RewroteIndexes)
		} else {
			fmt.Println("repaired    log was already clean")
		}
		fmt.Printf("surviving   %d segments, %d records\n", rep.Segments, rep.Records)
	}

	var st *commitlog.State
	var err error
	switch {
	case *follow:
		st, err = followLog(*dir, *followPoll, *maxLag, *quiet)
	case *verifyPath != "":
		st, err = verifyAgainstJournal(*dir, *verifyPath, *quiet)
	case *resume:
		st, err = commitlog.Resume(*dir)
	case *atSeq >= 0:
		st, err = commitlog.ReplayToSeq(*dir, *atSeq)
	default:
		st, err = commitlog.Replay(*dir, *at)
	}
	if err != nil {
		fatal(err)
	}

	if bench, ok := st.Meta()["bench"]; ok {
		fmt.Printf("run         %s (runtime %s, %s threads, scale %s, seed %s)\n",
			bench, st.Meta()["runtime"], st.Meta()["threads"], st.Meta()["scale"], st.Meta()["seed"])
	}
	fmt.Printf("replica     version %d (seq %d), %d commits applied, %d pages x %d bytes\n",
		st.Version, st.AtSeq, st.Commits, st.NumPages(), st.PageSize())
	if st.SawEnd {
		fmt.Println("trailer     end trailer present, checksum verified against the replica")
	}
	fmt.Printf("checksum    %016x\n", st.Checksum())
	if haveWant {
		if st.Checksum() != want {
			fmt.Fprintf(os.Stderr, "conseq-replay: checksum mismatch: replica %016x, expected %016x\n", st.Checksum(), want)
			os.Exit(1)
		}
		fmt.Println("expected    checksum matches")
	}
}

// verifyAgainstJournal replays the full log with a per-commit cross-check
// against the run journal: both artifacts record each commit at the same
// sync-order position, so the sequences must agree coordinate for
// coordinate, and the replica's page content must hash to the journal's
// recorded page hashes.
func verifyAgainstJournal(dir, jpath string, quiet bool) (*commitlog.State, error) {
	jd, err := journal.Load(jpath)
	if err != nil {
		return nil, err
	}
	i := 0
	st, err := commitlog.ReplayWith(dir, -1, func(st *commitlog.State, lc commitlog.Commit) error {
		if i >= len(jd.Commits) {
			return fmt.Errorf("verify: log has more commits than the journal (%d)", len(jd.Commits))
		}
		jc := jd.Commits[i]
		i++
		if lc.AtSeq != jc.AtSeq || lc.Version != jc.Version || lc.Tid != jc.Tid || lc.Clock != jc.Clock {
			return fmt.Errorf("verify: commit %d: log (seq %d v%d tid %d clock %d) != journal (seq %d v%d tid %d clock %d)",
				i-1, lc.AtSeq, lc.Version, lc.Tid, lc.Clock, jc.AtSeq, jc.Version, jc.Tid, jc.Clock)
		}
		if len(lc.Pages) != len(jc.Pages) {
			return fmt.Errorf("verify: commit %d (v%d): %d logged pages, journal has %d",
				i-1, lc.Version, len(lc.Pages), len(jc.Pages))
		}
		for k, pd := range lc.Pages {
			if pd.Page != jc.Pages[k].Page {
				return fmt.Errorf("verify: commit %d (v%d): page set diverges (%d vs %d)",
					i-1, lc.Version, pd.Page, jc.Pages[k].Page)
			}
			if got := st.PageHash(pd.Page); got != jc.Pages[k].Hash {
				return fmt.Errorf("verify: commit %d (v%d) page %d: replayed content hashes to %016x, journal recorded %016x",
					i-1, lc.Version, pd.Page, got, jc.Pages[k].Hash)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if i != len(jd.Commits) {
		return nil, fmt.Errorf("verify: log has %d commits, journal has %d", i, len(jd.Commits))
	}
	if !quiet {
		fmt.Printf("verified    %d commits against %s: sequence, page sets and content hashes all agree\n", i, jpath)
	}
	return st, nil
}

// followLog tails a growing log directory with an incremental replica
// follower (internal/replica): records are applied exactly once from a
// moving cursor instead of rescanning from record zero each poll, and
// torn tails or transient read errors go through the fleet's jittered
// seeded backoff loop. Returns once the end trailer appears, after
// cross-checking the follower's incremental state against a fresh
// snapshot-anchored Resume replay. With maxLag >= 0, the process exits 2
// as soon as the follower falls more than maxLag versions behind the
// durable frontier — a liveness bound for pipelines that tail a run.
func followLog(dir string, poll time.Duration, maxLag int64, quiet bool) (*commitlog.State, error) {
	fl := replica.New(dir, nil, replica.Options{
		Followers:       1,
		HistoryVersions: -1, // the tailer keeps full undo history; it is the only copy
		PollInterval:    poll,
		Seed:            1,
		OnApply: func(_ int, c commitlog.Commit) {
			if !quiet {
				fmt.Printf("commit      v%d seq %d tid %d clock %d: %d pages\n",
					c.Version, c.AtSeq, c.Tid, c.Clock, len(c.Pages))
			}
		},
	})
	if err := fl.Start(); err != nil {
		return nil, err
	}
	defer fl.Close()
	f := fl.Followers()[0]
	for !fl.Done() {
		time.Sleep(poll)
		if maxLag >= 0 {
			durable := newestDurableVersion(dir)
			if lag := durable - f.Version(); lag > maxLag {
				fmt.Fprintf(os.Stderr, "conseq-replay: follower lag %d exceeds -max-lag %d (durable v%d, applied v%d)\n",
					lag, maxLag, durable, f.Version())
				os.Exit(2)
			}
		}
	}
	st, err := commitlog.Resume(dir)
	if err != nil {
		return nil, err
	}
	if got := f.Checksum(); got != st.Checksum() {
		return nil, fmt.Errorf("follow: incremental follower checksum %016x != resume replay %016x", got, st.Checksum())
	}
	if !quiet {
		fmt.Printf("followed    incremental follower checksum matches the resume replay\n")
	}
	return st, nil
}

// newestDurableVersion reads the newest committed version currently
// durable, scanning only from the newest snapshot-led segment (tolerant
// of a mid-write tail). 0 when nothing is readable yet.
func newestDurableVersion(dir string) int64 {
	r, err := commitlog.OpenReader(dir)
	if err != nil {
		return 0
	}
	anchor, err := r.NewestAnchorRec()
	if err != nil {
		return 0
	}
	var v int64
	r.ForEachAvailableFrom(anchor, func(_ int64, rc commitlog.Record) error {
		switch rc.Kind {
		case commitlog.KindCommit:
			if rc.Commit.Version > v {
				v = rc.Commit.Version
			}
		case commitlog.KindEnd:
			if rc.End.Version > v {
				v = rc.End.Version
			}
		}
		return nil
	})
	return v
}

func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "conseq-replay:", err)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conseq-replay:", err)
	os.Exit(1)
}
