// Command conseq-diff localizes the first divergence between two
// deterministic run journals (internal/journal, written by
// `detrun -journal` or `consequence-bench -journal`). Identical runs
// write byte-identical journals, so any difference is a determinism
// violation; the report pins it to the first divergent sync event or
// commit (tid, clock, site) with the surrounding context — the last
// common events, the locks held at that point, and each thread's last
// commit. The checkpoint probe localizes in O(log n) hash comparisons
// (docs/divergence.md).
//
// Usage:
//
//	conseq-diff a.csqj b.csqj              # first divergence between two journals
//	conseq-diff -json a.csqj b.csqj        # machine-readable report
//	conseq-diff -live a.csqj               # re-execute a's run from its meta and compare
//	conseq-diff -perturb swap-grant -at 123 -o b.csqj a.csqj
//	conseq-diff -perturb flip-page  -at 17  -o b.csqj a.csqj
//
// The -perturb modes write a deliberately corrupted copy of a journal
// (checkpoints recomputed so the file stays internally consistent) —
// the self-test fuel for the divergence gate in scripts/check.sh.
//
// Exit status: 0 when the journals are equivalent, 1 on divergence,
// 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/harness"
	"repro/internal/journal"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as indented JSON instead of text")
	context := flag.Int("context", 8, "common events of context to include before the divergence")
	live := flag.Bool("live", false, "take one journal, re-execute the run its metadata describes on a fresh simulation host, and diff against the recorded journal")
	perturbMode := flag.String("perturb", "", "instead of diffing, write a deliberately corrupted copy of the journal: swap-grant (swap adjacent events at -at) | flip-page (flip a page hash of commit index -at)")
	at := flag.Int64("at", -1, "perturbation site: event seq for swap-grant, commit index for flip-page")
	out := flag.String("o", "", "output path for the perturbed journal (required with -perturb)")
	flag.Parse()

	switch {
	case *perturbMode != "":
		if flag.NArg() != 1 || *out == "" {
			usage("-perturb needs one input journal and -o <out>")
		}
		if err := perturb(flag.Arg(0), *perturbMode, *at, *out); err != nil {
			fatal(err)
		}
		fmt.Printf("perturbed journal (%s at %d) written to %s\n", *perturbMode, *at, *out)
		return
	case *live:
		if flag.NArg() != 1 {
			usage("-live needs exactly one journal")
		}
	case flag.NArg() != 2:
		usage("need two journals (or -live with one)")
	}

	a, err := journal.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var b *journal.Data
	var bName string
	if *live {
		b, bName, err = reexecute(a)
		if err != nil {
			fatal(err)
		}
	} else {
		bName = flag.Arg(1)
		b, err = journal.Load(bName)
		if err != nil {
			fatal(err)
		}
	}

	rep := journal.Diff(a, b, journal.DiffOptions{Context: *context})
	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("a: %s\nb: %s\n", flag.Arg(0), bName)
		rep.WriteText(os.Stdout)
	}
	if rep.Kind != journal.DivNone {
		os.Exit(1)
	}
}

// reexecute replays the run described by the journal's metadata
// (bench/runtime/threads/scale/seed/shards, as written by detrun and
// consequence-bench) on a fresh simulation host, journaling into a
// temporary file, and returns the decoded result. Determinism makes
// this a valid second side: a live replay of an honest journal diffs
// as equivalent.
func reexecute(a *journal.Data) (*journal.Data, string, error) {
	bench := a.Meta["bench"]
	if bench == "" || a.Meta["runtime"] == "" {
		return nil, "", fmt.Errorf("journal lacks run metadata (bench/runtime); cannot re-execute")
	}
	atoi := func(key string, def int64) (int64, error) {
		v, ok := a.Meta[key]
		if !ok {
			return def, nil
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("journal meta %s=%q: %w", key, v, err)
		}
		return n, nil
	}
	threads, err := atoi("threads", 0)
	if err != nil {
		return nil, "", err
	}
	scale, err := atoi("scale", 1)
	if err != nil {
		return nil, "", err
	}
	seed, err := atoi("seed", 42)
	if err != nil {
		return nil, "", err
	}
	shards, err := atoi("shards", 1)
	if err != nil {
		return nil, "", err
	}
	dir, err := os.MkdirTemp("", "conseq-diff")
	if err != nil {
		return nil, "", err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "live.csqj")
	if _, err := harness.Run(harness.Options{
		Bench:       bench,
		Runtime:     harness.Kind(a.Meta["runtime"]),
		Threads:     int(threads),
		Scale:       int(scale),
		Seed:        seed,
		Shards:      int(shards),
		JournalPath: path,
	}); err != nil {
		return nil, "", err
	}
	d, err := journal.Load(path)
	if err != nil {
		return nil, "", err
	}
	return d, fmt.Sprintf("live re-execution of %s on %s", bench, a.Meta["runtime"]), nil
}

// perturb loads a journal, applies one deliberate corruption, recomputes
// the interval checkpoints so the file stays internally consistent, and
// writes the result.
func perturb(in, mode string, at int64, out string) error {
	d, err := journal.Load(in)
	if err != nil {
		return err
	}
	switch mode {
	case "swap-grant":
		i := int(at)
		if i < 0 || i+1 >= len(d.Events) {
			return fmt.Errorf("swap-grant site %d out of range (journal has %d events)", at, len(d.Events))
		}
		// Swap the two adjacent grants but keep the seq column honest:
		// the divergence is the reordering, not a renumbering artifact.
		d.Events[i], d.Events[i+1] = d.Events[i+1], d.Events[i]
		d.Events[i].Seq, d.Events[i+1].Seq = int64(i), int64(i+1)
	case "flip-page":
		i := int(at)
		if i < 0 || i >= len(d.Commits) {
			return fmt.Errorf("flip-page site %d out of range (journal has %d commits)", at, len(d.Commits))
		}
		if len(d.Commits[i].Pages) == 0 {
			return fmt.Errorf("commit %d has no pages to flip", at)
		}
		d.Commits[i].Pages[0].Hash ^= 1 << 63
	default:
		return fmt.Errorf("unknown perturbation %q (want swap-grant or flip-page)", mode)
	}
	journal.RecomputeCheckpoints(d)
	return journal.WriteFile(out, d)
}

func usage(msg string) {
	fmt.Fprintln(os.Stderr, "conseq-diff:", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conseq-diff:", err)
	os.Exit(2)
}
